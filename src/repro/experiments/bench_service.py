"""CLI: load-test the sweep service (latency percentiles + hit rates).

Usage::

    python -m repro.experiments.bench_service                    # quick scale
    python -m repro.experiments.bench_service --clients 8 --out BENCH.json

Starts a real :class:`~repro.service.SweepService` in-process on an
ephemeral loopback port, then drives it with ``--clients`` concurrent
threads, each submitting ``--requests`` blocking sweep queries drawn
from a small pool of *overlapping* grids (every client re-spells and
re-orders its grids, so the canonicalization and memo layers — not
client cooperation — are what de-duplicates the work).

Reported per run:

* wall-latency p50 / p90 / p99 across every request, plus the cold
  (first-answer) and warm (memoised) populations separately;
* the scheduler's memo hit rate and coalescing counts — on an
  overlapping workload most requests must be answered without touching
  a simulator;
* the artifact store's disk budget accounting: the benchmark runs with
  a deliberately small ``--budget-bytes``, and records the eviction
  count showing the LRU byte budget was enforced while the service
  stayed correct.

Everything (trace cache, spool, service store) lives in a throwaway
temp directory, so the benchmark never perturbs the user's real caches.
The ``BENCH_pr8.json`` committed at the repo root is one quick-scale
run of this tool.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.engine.session import SessionRegistry
from repro.engine.store import ArtifactStore
from repro.errors import ConfigurationError
from repro.experiments.common import EXPERIMENT_SCALES
from repro.obs import RunLedger
from repro.service import ServiceClient, SweepScheduler, SweepService

__all__ = ["main", "run_benchmark"]

#: The overlapping query pool: four small grids sharing design points.
#: Every client hits every grid, spelled differently per client.
_GRID_POOL = [
    {"base": {"penalty": 8}, "axes": {"icache_kw": [1, 2], "dcache_kw": [1, 2]}},
    {"base": {"penalty": 8}, "axes": {"icache_kw": [2, 4]}},
    {"base": {"penalty": 12}, "axes": {"dcache_kw": [1, 2]}},
    {"base": {"penalty": 8, "block_words": 8}, "axes": {"icache_kw": [1, 2]}},
]


def _respell(grid: Dict[str, Any], client: int) -> Any:
    """A per-client spelling of the same semantic grid.

    Even clients send the compact axes form; odd clients expand it to an
    explicit (reversed) list with float-spelled integers.  Both must
    canonicalize to the same digest server-side.
    """
    if client % 2 == 0:
        return grid
    base = dict(grid.get("base", {}))
    entries: List[Dict[str, Any]] = [dict(base)]
    for name in sorted(grid.get("axes", {})):
        entries = [
            {**entry, name: float(value)}
            for entry in entries
            for value in grid["axes"][name]
        ]
    entries.reverse()
    return entries


def _percentiles(samples_ms: Sequence[float]) -> Dict[str, float]:
    if not samples_ms:
        return {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
    data = np.asarray(sorted(samples_ms), dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(data, 50)),
        "p90_ms": float(np.percentile(data, 90)),
        "p99_ms": float(np.percentile(data, 99)),
        "mean_ms": float(data.mean()),
    }


def run_benchmark(
    scale: Optional[str] = None,
    clients: int = 8,
    requests: int = 8,
    workers: int = 2,
    budget_bytes: int = 1 << 19,
    stream=sys.stdout,
) -> RunLedger:
    """Drive one in-process service hard; return the latency ledger."""
    if clients < 1:
        raise ConfigurationError(f"clients must be at least 1, got {clients}")
    if requests < 1:
        raise ConfigurationError(f"requests must be at least 1, got {requests}")
    registry = SessionRegistry(scales=dict(EXPERIMENT_SCALES))
    resolved_scale = registry.resolve_scale(scale)

    with tempfile.TemporaryDirectory(prefix="bench-service-") as scratch:
        root = Path(scratch)
        previous_cache = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = str(root / "cache")
        try:
            scheduler = SweepScheduler(
                registry=registry,
                store=ArtifactStore(
                    cache_dir=root / "cache", namespace="service"
                ),
                workers=workers,
                spool_dir=root / "spool",
                max_disk_bytes=budget_bytes,
            )
            service = SweepService(scheduler, port=0)
            loop = asyncio.new_event_loop()
            started = threading.Event()

            def serve() -> None:
                asyncio.set_event_loop(loop)
                loop.run_until_complete(service.start())
                started.set()
                loop.run_forever()

            server_thread = threading.Thread(target=serve, daemon=True)
            server_thread.start()
            if not started.wait(30):
                raise ConfigurationError("service failed to start")
            try:
                return _drive(
                    service, scheduler, resolved_scale, clients, requests, stream,
                    budget_bytes,
                )
            finally:
                asyncio.run_coroutine_threadsafe(service.stop(), loop).result(30)
                loop.call_soon_threadsafe(loop.stop)
                server_thread.join(timeout=10)
        finally:
            if previous_cache is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous_cache


def _drive(
    service: SweepService,
    scheduler: SweepScheduler,
    scale: str,
    clients: int,
    requests: int,
    stream,
    budget_bytes: int,
) -> RunLedger:
    latencies: List[Dict[str, Any]] = []
    record_lock = threading.Lock()
    errors: List[str] = []
    barrier = threading.Barrier(clients)

    def client_loop(client_index: int) -> None:
        client = ServiceClient(port=service.port, timeout=600)
        tenant = f"tenant-{client_index}"
        barrier.wait()  # all clients fire together
        for request_index in range(requests):
            grid = _respell(
                _GRID_POOL[request_index % len(_GRID_POOL)], client_index
            )
            started = time.perf_counter()
            try:
                resp = client.submit(grid, scale=scale, tenant=tenant, wait=True)
            except Exception as exc:  # noqa: BLE001 - recorded, then fatal
                with record_lock:
                    errors.append(f"client {client_index}: {exc}")
                return
            wall_ms = (time.perf_counter() - started) * 1e3
            with record_lock:
                latencies.append(
                    {
                        "client": client_index,
                        "request": request_index,
                        "wall_ms": wall_ms,
                        "cache_hit": bool(resp.get("cache_hit")),
                        "digest": resp.get("digest"),
                    }
                )

    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    total_wall_s = time.perf_counter() - started
    if errors:
        raise ConfigurationError("; ".join(errors[:3]))

    stats = scheduler.stats()
    all_ms = [entry["wall_ms"] for entry in latencies]
    warm_ms = [e["wall_ms"] for e in latencies if e["cache_hit"]]
    cold_ms = [e["wall_ms"] for e in latencies if not e["cache_hit"]]
    submitted = stats["submitted"]
    served_without_sweep = stats["memo_hits"] + stats["coalesced"]
    memo_rate = served_without_sweep / submitted if submitted else 0.0

    ledger = RunLedger()
    for entry in latencies:
        ledger.record_experiment(
            f"client{entry['client']}:req{entry['request']}",
            entry["wall_ms"] / 1e3,
        )
    ledger.set_run_info(
        benchmark="sweep-service",
        scale=scale,
        clients=clients,
        requests_per_client=requests,
        total_requests=len(latencies),
        total_wall_s=total_wall_s,
        throughput_rps=len(latencies) / total_wall_s if total_wall_s else 0.0,
        latency=_percentiles(all_ms),
        latency_cold=_percentiles(cold_ms),
        latency_warm=_percentiles(warm_ms),
        cold_requests=len(cold_ms),
        warm_requests=len(warm_ms),
        scheduler={
            key: stats[key]
            for key in ("submitted", "memo_hits", "coalesced", "completed", "failed")
        },
        memoised_frac=memo_rate,
        store=stats["store"],
        sessions=stats["sessions"],
        disk_budget_bytes=budget_bytes,
        disk_evictions=sum(
            tier.get("disk_evictions", 0)
            for tier in [stats["store"], *stats["sessions"].values()]
        ),
    )
    summary = ledger.run_info
    print(
        f"{len(latencies)} requests from {clients} clients in "
        f"{total_wall_s:.2f}s ({summary['throughput_rps']:.1f} req/s)",
        file=stream,
    )
    print(
        f"latency p50={summary['latency']['p50_ms']:.1f}ms "
        f"p99={summary['latency']['p99_ms']:.1f}ms "
        f"(cold p99={summary['latency_cold']['p99_ms']:.1f}ms, "
        f"warm p99={summary['latency_warm']['p99_ms']:.1f}ms)",
        file=stream,
    )
    print(
        f"memoised {summary['memoised_frac'] * 100:.1f}% of requests "
        f"({summary['scheduler']['memo_hits']} memo hits, "
        f"{summary['scheduler']['coalesced']} coalesced, "
        f"{summary['scheduler']['completed']} completed); "
        f"disk budget {budget_bytes} B enforced with "
        f"{summary['disk_evictions']} evictions",
        file=stream,
    )
    return ledger


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-test the sweep service: latency + hit rates."
    )
    parser.add_argument(
        "--scale",
        choices=sorted(EXPERIMENT_SCALES),
        default=None,
        help="trace scale (default: REPRO_SCALE env var or 'full')",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        metavar="N",
        help="concurrent client threads (default: 8)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=8,
        metavar="N",
        help="requests per client over the overlapping pool (default: 8)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="scheduler worker threads (default: 2)",
    )
    parser.add_argument(
        "--budget-bytes",
        type=int,
        default=1 << 19,
        metavar="BYTES",
        help="disk LRU budget for the artifact stores (default: 512 KiB, "
        "smaller than one quick-scale run's artifacts on purpose so "
        "eviction is exercised)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run ledger (JSON + ASCII twin) here",
    )
    args = parser.parse_args(argv)
    for name in ("clients", "requests", "workers", "budget_bytes"):
        if getattr(args, name) < 1:
            parser.error(f"--{name.replace('_', '-')} must be at least 1")
    try:
        ledger = run_benchmark(
            scale=args.scale,
            clients=args.clients,
            requests=args.requests,
            workers=args.workers,
            budget_bytes=args.budget_bytes,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.out is not None:
        ledger.write(args.out)
        args.out.with_suffix(".txt").write_text(ledger.render_summary() + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
