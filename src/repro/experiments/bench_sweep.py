"""CLI: time the per-size miss loop against the single-pass sweep.

Usage::

    python -m repro.experiments.bench_sweep                 # quick scale
    python -m repro.experiments.bench_sweep --out BENCH.json
    python -m repro.experiments.bench_sweep --repeats 5

For every (stream, block size) pair on the paper grid this times two
ways of producing the same per-size miss counts over 1–32 KW:

* **legacy** — one :func:`~repro.cache.fastsim.direct_mapped_misses`
  call per cache size (a stable argsort of the stream per size), and
* **sweep** — one :func:`~repro.cache.fastsim.direct_mapped_miss_sweep`
  call covering the whole size axis in a single pass.

Counts from the two paths are asserted equal before any timing is
reported, so the benchmark doubles as an end-to-end equivalence check
on the real workload streams.  Timings are best-of-``--repeats`` and
land in a :class:`~repro.obs.RunLedger` (the ``BENCH_pr3.json``
committed at the repo root is one quick-scale run of this tool).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.fastsim import direct_mapped_miss_sweep, direct_mapped_misses
from repro.engine.session import SessionRegistry
from repro.errors import ConfigurationError
from repro.experiments.common import EXPERIMENT_SCALES, PAPER_SIZES_KW, get_measurement
from repro.obs import RunLedger
from repro.utils.units import kw_to_words

__all__ = ["main", "run_benchmark", "grid_cases"]


def grid_cases(measurement) -> List[Tuple[str, np.ndarray, List[int]]]:
    """The (label, stream, set_counts) cases benchmarked, paper grid.

    Instruction streams cover every delay-slot count at the headline
    4-word block (the fig. 3/10 axis) plus the wider blocks at zero
    slots; data streams cover all three paper block sizes.
    """
    cases: List[Tuple[str, np.ndarray, List[int]]] = []

    def sets_axis(block_words: int) -> List[int]:
        return [kw_to_words(kw) // block_words for kw in PAPER_SIZES_KW]

    for slots in (0, 1, 2, 3):
        cases.append(
            (
                f"istream[b={slots},B=4]",
                measurement.istream_blocks(slots, 4),
                sets_axis(4),
            )
        )
    for block_words in (8, 16):
        cases.append(
            (
                f"istream[b=0,B={block_words}]",
                measurement.istream_blocks(0, block_words),
                sets_axis(block_words),
            )
        )
    for block_words in (4, 8, 16):
        cases.append(
            (
                f"dstream[B={block_words}]",
                measurement.dstream_blocks(block_words),
                sets_axis(block_words),
            )
        )
    return cases


def _best_of(repeats: int, func: Callable[[], Dict[int, int]]) -> Tuple[float, Dict[int, int]]:
    """Minimum wall time over ``repeats`` runs, plus the (stable) result."""
    best = float("inf")
    result: Dict[int, int] = {}
    for _ in range(repeats):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def run_benchmark(
    scale: Optional[str] = None,
    repeats: int = 3,
    registry: Optional[SessionRegistry] = None,
    stream=sys.stdout,
) -> RunLedger:
    """Time legacy vs. single-pass over the paper grid; return the ledger.

    Raises :class:`~repro.errors.ConfigurationError` if the two paths
    ever disagree on a miss count — a disagreement makes the timing
    meaningless, so it is fatal rather than a warning.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be at least 1, got {repeats}")
    measurement = get_measurement(scale, registry=registry)
    ledger = RunLedger()
    total_legacy = 0.0
    total_sweep = 0.0
    references = 0
    for label, blocks, set_counts in grid_cases(measurement):
        legacy_s, legacy_counts = _best_of(
            repeats,
            lambda: {sets: direct_mapped_misses(blocks, sets) for sets in set_counts},
        )
        sweep_s, sweep_counts = _best_of(
            repeats, lambda: direct_mapped_miss_sweep(blocks, set_counts)
        )
        if legacy_counts != sweep_counts:
            raise ConfigurationError(
                f"single-pass sweep disagrees with per-size loop on {label}: "
                f"{sweep_counts} != {legacy_counts}"
            )
        total_legacy += legacy_s
        total_sweep += sweep_s
        references += len(blocks)
        ledger.record_experiment(f"legacy:{label}", legacy_s)
        ledger.record_experiment(f"sweep:{label}", sweep_s)
        print(
            f"[{label}] refs={len(blocks)} sizes={len(set_counts)} "
            f"legacy={legacy_s:.3f}s sweep={sweep_s:.3f}s "
            f"({legacy_s / sweep_s:.2f}x)",
            file=stream,
        )
    ledger.set_run_info(
        benchmark="miss-sweep",
        scale=(registry or _default_registry()).resolve_scale(scale),
        seed=getattr(measurement, "seed", None),
        total_instructions=getattr(measurement, "total_instructions", None),
        grid_references=references,
        repeats=repeats,
        legacy_wall_s=total_legacy,
        sweep_wall_s=total_sweep,
        speedup=total_legacy / total_sweep,
        wall_s=total_legacy + total_sweep,
    )
    print(
        f"total: legacy={total_legacy:.3f}s sweep={total_sweep:.3f}s "
        f"speedup={total_legacy / total_sweep:.2f}x",
        file=stream,
    )
    return ledger


def _default_registry() -> SessionRegistry:
    from repro.engine.session import DEFAULT_REGISTRY

    return DEFAULT_REGISTRY


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the per-size miss loop vs. the single-pass sweep."
    )
    parser.add_argument(
        "--scale",
        choices=sorted(EXPERIMENT_SCALES),
        default=None,
        help="trace scale (default: REPRO_SCALE env var or 'full')",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timing repeats per case; best-of-N is reported (default: 3)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run ledger (JSON + ASCII twin) here",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be at least 1, got {args.repeats}")
    try:
        ledger = run_benchmark(scale=args.scale, repeats=args.repeats)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.out is not None:
        ledger.write(args.out)
        args.out.with_suffix(".txt").write_text(ledger.render_summary() + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
