"""Figure 13 — TPI at the low (6-cycle) refill penalty, plus the
asymmetric-split search.

The paper: cheaper refills shrink the optimal cache and pipeline depth
(b = l = 2 at 16 KW combined, TPI 6.61 ns), and an asymmetric design — a
larger, deeper-pipelined L1-I with a smaller L1-D — can edge out the
symmetric optimum (32 KW I / 8 KW D at TPI 6.5 ns), because branch slots
cost less CPI than load slots.
"""

from __future__ import annotations

from typing import Optional

from repro.core import DesignOptimizer, SuiteMeasurement, SystemConfig
from repro.experiments.common import (
    DEFAULT_BLOCK_WORDS,
    ExperimentResult,
    PAPER_SIZES_KW,
    get_measurement,
)
from repro.experiments.fig12 import tpi_grid
from repro.utils.tables import render_series

__all__ = ["run"]


def run(measurement: Optional[SuiteMeasurement] = None) -> ExperimentResult:
    measurement = measurement or get_measurement()
    optimizer = DesignOptimizer(measurement)
    base = SystemConfig(penalty=6, block_words=DEFAULT_BLOCK_WORDS)
    series, data, best = tpi_grid(optimizer, base)
    asym = optimizer.best(
        optimizer.asymmetric_grid(
            base,
            icache_sizes_kw=PAPER_SIZES_KW,
            dcache_sizes_kw=PAPER_SIZES_KW,
            branch_slots=(2, 3),
            load_slots=(2, 3),
        )
    )
    text = render_series(
        "combined L1 (KW)",
        [2 * s for s in PAPER_SIZES_KW],
        series,
        title="Figure 13: TPI (ns) vs combined L1 size, p=6, B=4W",
        precision=2,
    )
    summary = (
        f"symmetric optimum: b={best.config.branch_slots}, "
        f"l={best.config.load_slots}, S={best.config.combined_l1_kw:g} KW "
        f"-> TPI {best.tpi_ns:.2f} ns\n"
        f"asymmetric optimum: L1-I={asym.config.icache_kw:g} KW (b="
        f"{asym.config.branch_slots}), L1-D={asym.config.dcache_kw:g} KW "
        f"(l={asym.config.load_slots}) -> TPI {asym.tpi_ns:.2f} ns"
    )
    return ExperimentResult(
        experiment_id="fig13",
        title="TPI vs combined L1 size (p=6) and asymmetric split",
        text=text + "\n" + summary,
        data={
            "tpi": data,
            "best": {
                "b": best.config.branch_slots,
                "l": best.config.load_slots,
                "combined_kw": best.config.combined_l1_kw,
                "tpi_ns": best.tpi_ns,
            },
            "best_asymmetric": {
                "b": asym.config.branch_slots,
                "l": asym.config.load_slots,
                "icache_kw": asym.config.icache_kw,
                "dcache_kw": asym.config.dcache_kw,
                "tpi_ns": asym.tpi_ns,
            },
        },
        paper_notes=(
            "Paper: symmetric optimum b=l=2 at 16 KW, 6.61 ns; asymmetric "
            "32 KW-I / 8 KW-D reaches 6.5 ns."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
