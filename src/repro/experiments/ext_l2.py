"""Extension — an explicit L2, testing the constant-penalty assumption.

The paper models the backing store as "a constant time L1 miss penalty";
its Figure 1 shows the real machine has a 1-16 MB L2 in front of slow
main memory.  This extension simulates that L2 explicitly: the L1 miss
stream (exact, from the per-reference miss mask) is replayed through a
direct-mapped L2 with larger blocks, and the *effective* average L1 miss
penalty is computed as

    p_eff = p_L2_hit + m_L2 * p_memory.

If the L2 is big enough that ``m_L2`` is small and stable across L1
sizes, the paper's constant-penalty simplification is sound; the table
shows where it starts to bend.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.fastsim import direct_mapped_miss_mask, direct_mapped_misses
from repro.core import SuiteMeasurement
from repro.experiments.common import (
    DEFAULT_BLOCK_WORDS,
    ExperimentResult,
    get_measurement,
)
from repro.utils.tables import render_table
from repro.utils.units import kw_to_words

__all__ = ["run", "L2_SIZES_KW", "L2_HIT_CYCLES", "MEMORY_CYCLES"]

L2_SIZES_KW = (64, 256, 1024)
L2_BLOCK_WORDS = 16
#: L1 refill from an L2 hit (the paper's p = 10 regime).
L2_HIT_CYCLES = 10
#: L2 refill from DRAM main memory.
MEMORY_CYCLES = 60


def run(measurement: Optional[SuiteMeasurement] = None) -> ExperimentResult:
    measurement = measurement or get_measurement()
    rows = []
    data = {}
    for l1_kw in (1, 8, 32):
        l1_sets = kw_to_words(l1_kw) // DEFAULT_BLOCK_WORDS
        blocks = measurement.dstream_blocks(DEFAULT_BLOCK_WORDS)
        miss_mask = direct_mapped_miss_mask(blocks, l1_sets)
        l1_miss_blocks = blocks[miss_mask]
        # Re-express the L1 miss stream at L2 block granularity.
        ratio = L2_BLOCK_WORDS // DEFAULT_BLOCK_WORDS
        l2_stream = l1_miss_blocks // ratio
        for l2_kw in L2_SIZES_KW:
            l2_sets = kw_to_words(l2_kw) // L2_BLOCK_WORDS
            l2_misses = direct_mapped_misses(l2_stream, l2_sets)
            l2_miss_rate = l2_misses / max(1, len(l2_stream))
            effective_penalty = L2_HIT_CYCLES + l2_miss_rate * MEMORY_CYCLES
            rows.append(
                [
                    l1_kw,
                    l2_kw,
                    len(l2_stream),
                    round(l2_miss_rate, 3),
                    round(effective_penalty, 2),
                ]
            )
            data[(l1_kw, l2_kw)] = {
                "l1_misses": int(len(l2_stream)),
                "l2_miss_rate": l2_miss_rate,
                "effective_penalty": effective_penalty,
            }
    text = render_table(
        [
            "L1-D (KW)",
            "L2 (KW)",
            "L1 misses",
            "L2 miss rate",
            "effective p (cycles)",
        ],
        rows,
        title=(
            "Extension: explicit L2 behind the L1-D "
            f"(L2 hit {L2_HIT_CYCLES} cycles, memory {MEMORY_CYCLES} cycles)"
        ),
    )
    return ExperimentResult(
        experiment_id="ext_l2",
        title="How constant is the 'constant' L1 miss penalty?",
        text=text,
        data=data,
        paper_notes=(
            "The paper assumes a constant L1 miss penalty; a megaword L2 "
            "makes that nearly true, while a small L2 inflates the "
            "effective penalty for small L1s (whose miss streams retain "
            "more locality for the L2 to lose)."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
