"""Figure 5 — CPI versus t_CPU for various cache sizes.

With the miss penalty fixed in *nanoseconds* (a property of the memory
system, not the CPU clock), slowing the clock makes each miss cost fewer
cycles, so CPI falls as t_CPU rises.  The paper plots this for a system
with two branch delay slots at p = 10 cycles (referenced to its cycle
time); we use the equivalent 35 ns memory latency.
"""

from __future__ import annotations

from typing import Optional

from repro.core import CpiModel, SuiteMeasurement, SystemConfig
from repro.core.config import PenaltyMode
from repro.experiments.common import (
    DEFAULT_BLOCK_WORDS,
    ExperimentResult,
    get_measurement,
)
from repro.utils.tables import render_series

__all__ = ["run", "TCPU_GRID_NS", "MEMORY_LATENCY_NS"]

TCPU_GRID_NS = (3.5, 4.5, 6.0, 8.0, 10.0, 14.0)
#: 10 cycles at the 3.5 ns floor.
MEMORY_LATENCY_NS = 35.0
_SIZES_KW = (1, 4, 16)


def run(measurement: Optional[SuiteMeasurement] = None) -> ExperimentResult:
    measurement = measurement or get_measurement()
    model = CpiModel(measurement)
    series = {}
    data = {}
    for size in _SIZES_KW:
        config = SystemConfig(
            icache_kw=size,
            dcache_kw=size,
            block_words=DEFAULT_BLOCK_WORDS,
            branch_slots=2,
            load_slots=2,
            penalty=MEMORY_LATENCY_NS,
            penalty_mode=PenaltyMode.NANOSECONDS,
        )
        values = [model.cpi(config, cycle_time_ns=t) for t in TCPU_GRID_NS]
        series[f"S={size}KW"] = values
        data[size] = dict(zip(TCPU_GRID_NS, values))
    text = render_series(
        "t_CPU (ns)",
        list(TCPU_GRID_NS),
        series,
        title="Figure 5: CPI vs t_CPU (b=2, 35 ns memory latency)",
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="CPI versus cycle time at constant-time miss penalty",
        text=text,
        data={"cpi": data},
        paper_notes=(
            "Paper: CPI decreases as t_CPU increases (fewer cycles per "
            "miss); smaller caches are affected more."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
