"""Extension — BTB capacity sweep.

The paper restricted the BTB to 256 entries so it could be accessed in a
single cycle, acknowledging "one could argue that the relatively small
size of the BTB compromises its performance".  This ablation quantifies
exactly that: wrong rate (miss or mispredict) versus BTB entries over the
same multiprogrammed CTI stream, with the cycles-per-CTI each size would
give at two delay cycles.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.branchpred import BranchTargetBuffer, cti_stream
from repro.core import SuiteMeasurement
from repro.experiments.common import ExperimentResult, get_measurement
from repro.trace.multiprogram import (
    address_space_offset,
    interleave_chunks,
    multiprogram_quanta,
)
from repro.utils.tables import render_table

__all__ = ["run", "BTB_SIZES"]

BTB_SIZES = (64, 256, 1024, 4096)


def run(measurement: Optional[SuiteMeasurement] = None) -> ExperimentResult:
    measurement = measurement or get_measurement()
    streams = [
        cti_stream(bench.trace).with_offset(address_space_offset(bench.index))
        for bench in measurement.benchmarks
    ]
    quanta = multiprogram_quanta([len(s) for s in streams], measurement.switches)
    pcs = interleave_chunks([s.pcs for s in streams], quanta)
    taken = interleave_chunks([s.taken.astype(np.int8) for s in streams], quanta)
    targets = interleave_chunks([s.targets for s in streams], quanta)

    rows = []
    data = {}
    for entries in BTB_SIZES:
        stats = BranchTargetBuffer(entries=entries).simulate(
            pcs, taken.astype(bool), targets
        )
        rows.append(
            [
                entries,
                round(stats.hit_rate, 3),
                round(stats.wrong_rate, 3),
                round(stats.cycles_per_cti(2), 2),
            ]
        )
        data[entries] = {
            "hit_rate": stats.hit_rate,
            "wrong_rate": stats.wrong_rate,
            "cycles_per_cti_2": stats.cycles_per_cti(2),
        }
    text = render_table(
        ["entries", "hit rate", "wrong rate", "cycles/CTI (b=2)"],
        rows,
        title="Extension: BTB capacity vs prediction quality",
    )
    return ExperimentResult(
        experiment_id="ext_btb_size",
        title="How much the single-cycle size constraint costs the BTB",
        text=text,
        data=data,
        paper_notes=(
            "The paper's 256-entry limit comes from single-cycle access at "
            "the 3.5 ns floor; larger BTBs would predict better but slower."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
