"""Figure 4 — total instruction-side CPI vs L1-I size and delay slots.

Total here means base + I-miss stalls + branch-delay cycles, isolating the
instruction side as the paper's Figure 4 does.  The paper's observation:
for 1-16 KW it always pays to double the cache and add one more delay
slot, because the miss-CPI saved exceeds the delay-CPI added.
"""

from __future__ import annotations

from typing import Optional

from repro.core import CpiModel, SuiteMeasurement, SystemConfig
from repro.experiments.common import (
    DEFAULT_BLOCK_WORDS,
    DEFAULT_PENALTY,
    ExperimentResult,
    PAPER_SIZES_KW,
    get_measurement,
)
from repro.utils.tables import render_series

__all__ = ["run", "instruction_side_cpi"]


def instruction_side_cpi(model: CpiModel, size_kw: float, slots: int) -> float:
    """base + L1-I misses + branch delay cycles for one point."""
    config = SystemConfig(
        icache_kw=size_kw,
        dcache_kw=8,
        block_words=DEFAULT_BLOCK_WORDS,
        branch_slots=slots,
        penalty=DEFAULT_PENALTY,
    )
    return 1.0 + model.icache_cpi(config) + model.branch_cpi(config)


def run(measurement: Optional[SuiteMeasurement] = None) -> ExperimentResult:
    measurement = measurement or get_measurement()
    model = CpiModel(measurement)
    series = {}
    data = {}
    for slots in (0, 1, 2, 3):
        values = [instruction_side_cpi(model, size, slots) for size in PAPER_SIZES_KW]
        series[f"b={slots}"] = values
        data[slots] = dict(zip(PAPER_SIZES_KW, values))
    text = render_series(
        "L1-I size (KW)",
        list(PAPER_SIZES_KW),
        series,
        title="Figure 4: instruction-side CPI vs L1-I size (B=4W, p=10)",
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Branch delay slots versus L1-I cache size",
        text=text,
        data={"cpi": data},
        paper_notes=(
            "Paper: doubling the cache while adding one slot lowers CPI "
            "throughout 1-16 KW (slot cost 0.03-0.15 < size gain 0.05-0.2)."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
