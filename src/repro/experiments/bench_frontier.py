"""CLI: time the shared-pass frontier against per-objective sweeps.

Usage::

    python -m repro.experiments.bench_frontier                 # quick scale
    python -m repro.experiments.bench_frontier --out BENCH.json
    python -m repro.experiments.bench_frontier --repeats 5

Asking a design space for its TPI optimum, its EPI optimum, its EDP
optimum, *and* its Pareto frontier are four questions over one scored
point set.  :meth:`~repro.core.optimizer.DesignOptimizer.select` answers
them all from a single scored pass (satellite of the ``repro.physical``
work); the naive alternative runs one full sweep per question.  This
benchmark times both over the asymmetric grid:

* **shared** — one optimizer, one ``select`` pass, every answer derived
  from the same scored points;
* **independent** — a fresh optimizer per question, each re-entering
  :meth:`~repro.core.optimizer.DesignOptimizer.sweep` (simulation is
  memoised in the artifact store, so this measures the real per-sweep
  walk the shared pass avoids, not redundant cache simulation).

Answers from both paths are asserted identical before any timing is
reported.  Timings are best-of-``--repeats`` and land in a
:class:`~repro.obs.RunLedger` (the committed ``BENCH_pr9.json`` is one
quick-scale run of this tool).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import SystemConfig
from repro.core.frontier import objective_value
from repro.core.optimizer import DesignOptimizer, point_order_key
from repro.engine.session import SessionRegistry
from repro.errors import ConfigurationError
from repro.experiments.common import EXPERIMENT_SCALES, get_measurement
from repro.obs import RunLedger

__all__ = ["main", "run_benchmark", "SCALAR_OBJECTIVES"]

#: The single-objective questions both paths answer (plus the frontier).
SCALAR_OBJECTIVES = ("tpi", "epi", "edp")

#: One answer set: scalar winners + the frontier, as order keys.
_Answers = Dict[str, object]


def _best_of(repeats: int, func: Callable[[], _Answers]) -> Tuple[float, _Answers]:
    """Minimum wall time over ``repeats`` runs, plus the (stable) result."""
    best = float("inf")
    result: _Answers = {}
    for _ in range(repeats):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def _shared_answers(measurement, grid: Sequence[SystemConfig]) -> _Answers:
    """Every question from one scored pass of one optimizer."""
    optimizer = DesignOptimizer(measurement)
    selection = optimizer.select(grid, objective="frontier")
    answers: _Answers = {
        "frontier": tuple(point_order_key(p) for p in selection.frontier)
    }
    for objective in SCALAR_OBJECTIVES:
        winner = min(
            selection.points,
            key=lambda p: (objective_value(p, objective), point_order_key(p)),
        )
        answers[objective] = point_order_key(winner)
    return answers


def _independent_answers(measurement, grid: Sequence[SystemConfig]) -> _Answers:
    """One fresh optimizer (and sweep walk) per question."""
    answers: _Answers = {}
    for objective in SCALAR_OBJECTIVES:
        optimizer = DesignOptimizer(measurement)
        points = optimizer.sweep(grid)
        winner = min(
            points,
            key=lambda p: (objective_value(p, objective), point_order_key(p)),
        )
        answers[objective] = point_order_key(winner)
    optimizer = DesignOptimizer(measurement)
    answers["frontier"] = tuple(
        point_order_key(p) for p in optimizer.frontier(grid)
    )
    return answers


def run_benchmark(
    scale: Optional[str] = None,
    repeats: int = 3,
    registry: Optional[SessionRegistry] = None,
    stream=sys.stdout,
) -> RunLedger:
    """Time shared-pass selection vs. one sweep per objective.

    Raises :class:`~repro.errors.ConfigurationError` if the two paths
    ever disagree on a winner or on the frontier — a disagreement makes
    the timing meaningless, so it is fatal rather than a warning.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be at least 1, got {repeats}")
    measurement = get_measurement(scale, registry=registry)
    optimizer = DesignOptimizer(measurement)
    grid = optimizer.asymmetric_grid(SystemConfig())
    # Warm the simulation artifacts once so both timed paths measure the
    # selection machinery, not who pays for cache simulation first.
    optimizer.sweep(grid)
    shared_s, shared = _best_of(
        repeats, lambda: _shared_answers(measurement, grid)
    )
    independent_s, independent = _best_of(
        repeats, lambda: _independent_answers(measurement, grid)
    )
    if shared != independent:
        raise ConfigurationError(
            f"shared-pass answers disagree with per-objective sweeps: "
            f"{shared} != {independent}"
        )
    questions = len(SCALAR_OBJECTIVES) + 1
    speedup = independent_s / shared_s
    ledger = RunLedger()
    ledger.record_experiment("shared:select", shared_s)
    ledger.record_experiment("independent:per-objective", independent_s)
    ledger.set_run_info(
        benchmark="frontier-shared-pass",
        scale=(registry or _default_registry()).resolve_scale(scale),
        seed=getattr(measurement, "seed", None),
        total_instructions=getattr(measurement, "total_instructions", None),
        grid_points=len(grid),
        questions=questions,
        frontier_points=len(shared["frontier"]),
        repeats=repeats,
        shared_wall_s=shared_s,
        independent_wall_s=independent_s,
        speedup=speedup,
        wall_s=shared_s + independent_s,
    )
    print(
        f"grid={len(grid)} points, {questions} questions "
        f"(tpi/epi/edp best + frontier): shared={shared_s:.3f}s "
        f"independent={independent_s:.3f}s speedup={speedup:.2f}x",
        file=stream,
    )
    return ledger


def _default_registry() -> SessionRegistry:
    from repro.engine.session import DEFAULT_REGISTRY

    return DEFAULT_REGISTRY


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time shared-pass frontier selection vs. one sweep "
        "per objective."
    )
    parser.add_argument(
        "--scale",
        choices=sorted(EXPERIMENT_SCALES),
        default=None,
        help="trace scale (default: REPRO_SCALE env var or 'full')",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timing repeats per path; best-of-N is reported (default: 3)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run ledger (JSON + ASCII twin) here",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be at least 1, got {args.repeats}")
    try:
        ledger = run_benchmark(scale=args.scale, repeats=args.repeats)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.out is not None:
        ledger.write(args.out)
        args.out.with_suffix(".txt").write_text(ledger.render_summary() + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
