"""Table 4 — branch-target buffer prediction performance."""

from __future__ import annotations

from typing import Optional

from repro.core import SuiteMeasurement
from repro.experiments.common import ExperimentResult, get_measurement
from repro.utils.tables import render_table

__all__ = ["run", "PAPER_BTB"]

#: The paper's Table 4: delay cycles -> (cycles per CTI, additional CPI).
PAPER_BTB = {1: (1.44, 0.057), 2: (1.65, 0.082), 3: (1.85, 0.110)}


def run(measurement: Optional[SuiteMeasurement] = None) -> ExperimentResult:
    measurement = measurement or get_measurement()
    stats = measurement.btb_stats
    cti_fraction = measurement.cti_fraction
    rows = []
    data = {
        "hit_rate": stats.hit_rate,
        "wrong_rate": stats.wrong_rate,
        "per_delay": {},
    }
    for delay in (1, 2, 3):
        cycles = stats.cycles_per_cti(delay)
        cpi = stats.additional_cpi(delay, cti_fraction)
        paper_cycles, paper_cpi = PAPER_BTB[delay]
        rows.append([delay, round(cycles, 2), paper_cycles, round(cpi, 3), paper_cpi])
        data["per_delay"][delay] = {"cycles_per_cti": cycles, "additional_cpi": cpi}
    text = render_table(
        ["delay cycles", "cycles/CTI", "(paper)", "add'l CPI", "(paper)"],
        rows,
        title=(
            "Table 4: 256-entry BTB "
            f"(hit rate {stats.hit_rate:.2f}, wrong rate {stats.wrong_rate:.2f})"
        ),
        precision=3,
    )
    return ExperimentResult(
        experiment_id="table4",
        title="BTB prediction performance",
        text=text,
        data=data,
        paper_notes="Paper: 1.44 / 1.65 / 1.85 cycles per CTI; CPI 0.057 / 0.082 / 0.110.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
