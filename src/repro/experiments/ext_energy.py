"""Extension — leakage-driven divergence of energy- and time-optimal caches.

The paper optimizes TPI alone; its GaAs DCFL technology leaks per chip
whether or not the array is accessed.  This study scores the Figure 12
symmetric grid on the :mod:`repro.physical` energy axis at three leakage
scales and asks where the *energy*-optimal geometry sits relative to the
*TPI*-optimal one (which is independent of the energy coefficients):

* at low leakage, EPI is refill-dominated — small caches miss too often
  and pay the next-level access energy, so the energy optimum sits at a
  sizeable cache, near the TPI optimum;
* as leakage grows, the per-chip static power (integrated over TPI)
  overtakes the refill term and drags the energy optimum toward fewer
  chips — the nanometer-CMOS effect Bai/Kim/Mudge describe, reproduced
  here on the MCM chip-count axis.

The TPI-optimal point never moves (leakage does not change time), so the
gap between the two optima is purely leakage-driven.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core import SuiteMeasurement, SystemConfig
from repro.core.optimizer import DesignOptimizer, point_order_key
from repro.experiments.common import (
    DEFAULT_BLOCK_WORDS,
    DEFAULT_PENALTY,
    ExperimentResult,
    get_measurement,
)
from repro.physical import DEFAULT_PHYSICAL
from repro.utils.tables import render_table

__all__ = ["run", "LEAKAGE_SCALES"]

#: Multipliers on the calibrated static power — emulating technologies
#: whose leakage share of total energy differs (the Bai/Kim/Mudge axis).
LEAKAGE_SCALES = (0.25, 1.0, 4.0)


def _geometry(point) -> str:
    config = point.config
    return (
        f"{config.icache_kw:g}I/{config.dcache_kw:g}D KW "
        f"b={config.branch_slots} l={config.load_slots}"
    )


def run(measurement: Optional[SuiteMeasurement] = None) -> ExperimentResult:
    measurement = measurement or get_measurement()
    base = SystemConfig(
        block_words=DEFAULT_BLOCK_WORDS, penalty=DEFAULT_PENALTY
    )
    rows = []
    data = {}
    for scale in LEAKAGE_SCALES:
        phys = replace(DEFAULT_PHYSICAL, leakage_scale=scale)
        optimizer = DesignOptimizer(measurement, phys=phys)
        grid = optimizer.symmetric_grid(base)
        # One scored pass yields the EPI winner, the TPI winner, and the
        # whole (TPI, EPI, area) frontier for this leakage scale.
        selection = optimizer.select(grid, objective="epi")
        epi_best = selection.best
        tpi_best = min(selection.points, key=point_order_key)
        static = optimizer.physical.breakdown(
            epi_best.config, epi_best.tpi_ns
        ).static_fraction
        rows.append(
            [
                f"{scale:g}x",
                _geometry(tpi_best),
                round(tpi_best.epi_nj, 2),
                _geometry(epi_best),
                round(epi_best.tpi_ns, 2),
                round(epi_best.epi_nj, 2),
                f"{100.0 * static:.0f}%",
                len(selection.frontier),
            ]
        )
        data[f"{scale:g}"] = {
            "tpi_best_kw": tpi_best.config.combined_l1_kw,
            "tpi_best_tpi_ns": tpi_best.tpi_ns,
            "tpi_best_epi_nj": tpi_best.epi_nj,
            "epi_best_kw": epi_best.config.combined_l1_kw,
            "epi_best_tpi_ns": epi_best.tpi_ns,
            "epi_best_epi_nj": epi_best.epi_nj,
            "epi_best_static_fraction": static,
            "frontier_size": len(selection.frontier),
        }
    low, high = data[f"{LEAKAGE_SCALES[0]:g}"], data[f"{LEAKAGE_SCALES[-1]:g}"]
    data["divergence"] = {
        "tpi_best_kw": low["tpi_best_kw"],
        "epi_best_kw_low_leakage": low["epi_best_kw"],
        "epi_best_kw_high_leakage": high["epi_best_kw"],
        "diverges": high["epi_best_kw"] < low["tpi_best_kw"],
    }
    text = render_table(
        [
            "leakage",
            "TPI-optimal",
            "its EPI (nJ)",
            "EPI-optimal",
            "its TPI (ns)",
            "its EPI (nJ)",
            "static share",
            "frontier",
        ],
        rows,
        title=(
            "Extension: energy- vs time-optimal geometry per leakage scale "
            "(symmetric grid, B=4 W, p=10)"
        ),
    )
    return ExperimentResult(
        experiment_id="ext_energy",
        title="Leakage-driven divergence of energy- and TPI-optimal caches",
        text=text,
        data=data,
        paper_notes=(
            "Outside the paper's scope (it optimizes time alone).  The "
            "TPI-optimal geometry is leakage-invariant; the energy-optimal "
            "geometry shrinks as static power scales up, diverging from it "
            "— the Bai/Kim/Mudge leakage effect on the MCM chip-count axis."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
