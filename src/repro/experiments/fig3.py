"""Figure 3 — effect of delay-slot code expansion on L1-I cache CPI.

Plots the instruction-cache stall component of CPI against L1-I size for
0-3 branch delay slots (B = 4 W, p = 10 cycles).  The spread between the
b-curves is the extra miss cost of the replicated/padded code.
"""

from __future__ import annotations

from typing import Optional

from repro.core import CpiModel, SuiteMeasurement, SystemConfig
from repro.experiments.common import (
    DEFAULT_BLOCK_WORDS,
    DEFAULT_PENALTY,
    ExperimentResult,
    PAPER_SIZES_KW,
    get_measurement,
)
from repro.utils.tables import render_series

__all__ = ["run"]


def run(measurement: Optional[SuiteMeasurement] = None) -> ExperimentResult:
    measurement = measurement or get_measurement()
    model = CpiModel(measurement)
    series = {}
    data = {}
    for slots in (0, 1, 2, 3):
        values = []
        for size in PAPER_SIZES_KW:
            config = SystemConfig(
                icache_kw=size,
                dcache_kw=8,
                block_words=DEFAULT_BLOCK_WORDS,
                branch_slots=slots,
                penalty=DEFAULT_PENALTY,
            )
            values.append(model.icache_cpi(config))
        series[f"b={slots}"] = values
        data[slots] = dict(zip(PAPER_SIZES_KW, values))
    text = render_series(
        "L1-I size (KW)",
        list(PAPER_SIZES_KW),
        series,
        title="Figure 3: L1-I miss CPI vs size and delay slots (B=4W, p=10)",
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="I-cache CPI impact of delay-slot code expansion",
        text=text,
        data={"icache_cpi": data},
        paper_notes=(
            "Paper: at 1 KW the miss CPI grows ~0.03-0.06 per slot at "
            "p=10-18; at 32 KW only 0.004-0.014 per slot."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
