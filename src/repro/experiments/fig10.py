"""Figure 10 — the MCM floorplan geometry feeding the delay macro-model."""

from __future__ import annotations

from typing import Optional

from repro.core import SuiteMeasurement
from repro.experiments.common import ExperimentResult, PAPER_SIZES_KW
from repro.timing import DEFAULT_TECHNOLOGY, Floorplan, chips_for_cache, mcm_delay_ns
from repro.timing.sram import cache_access_time_ns
from repro.utils.tables import render_table

__all__ = ["run"]


def run(measurement: Optional[SuiteMeasurement] = None) -> ExperimentResult:
    tech = DEFAULT_TECHNOLOGY
    rows = []
    data = {}
    for size in PAPER_SIZES_KW:
        chips = chips_for_cache(size, tech)
        plan = Floorplan(chips=chips, pitch_cm=tech.chip_pitch_cm)
        rows.append(
            [
                size,
                chips,
                round(plan.short_side, 2),
                round(plan.long_side, 2),
                round(plan.max_wire_length_cm, 2),
                round(mcm_delay_ns(chips, tech), 3),
                round(cache_access_time_ns(size, tech), 2),
            ]
        )
        data[size] = {
            "chips": chips,
            "max_wire_cm": plan.max_wire_length_cm,
            "t_l1_ns": cache_access_time_ns(size, tech),
        }
    text = render_table(
        [
            "size (KW)",
            "chips n",
            "sqrt(n/2)",
            "sqrt(2n)",
            "max wire (cm)",
            "t_MCM (ns)",
            "t_L1 (ns)",
        ],
        rows,
        title="Figure 10: sqrt(n/2) x sqrt(2n) floorplan and resulting delays",
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="MCM floorplan geometry and cache access times",
        text=text,
        data=data,
        paper_notes=(
            "Paper: chips packed as a sqrt(n/2) x sqrt(2n) rectangle with "
            "the CPU mid-long-side; max wire sqrt(2n) pitches; t_L1 linear "
            "in n (eq. 6)."
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
