"""Experiment harness: one module per table and figure of the paper.

Every module exposes ``run(measurement) -> ExperimentResult``; the CLI
(``repro-experiments``, or ``python -m repro.experiments.runner``)
regenerates any subset.  Results are plain text — the same rows/series the
paper's tables and figures report — plus a raw-data dict for programmatic
use and for the benchmark harness.
"""

from repro.experiments.common import (
    ExperimentResult,
    get_measurement,
    EXPERIMENT_SCALES,
)

__all__ = ["ExperimentResult", "get_measurement", "EXPERIMENT_SCALES"]
