"""Deterministic random-number handling.

Every stochastic component in the library (workload synthesis, memory
reference generation, branch behaviour) takes an explicit seed or generator.
Reproducibility matters here: the experiment harness must regenerate the same
tables and figures on every run, so nothing in the library ever touches the
global :mod:`random` state.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

__all__ = ["make_rng", "spawn_rng", "stable_seed"]

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used when the caller does not care about the specific stream.
DEFAULT_SEED = 19920519  # ISCA 1992 conference date.


def stable_seed(*parts: Union[str, int]) -> int:
    """Derive a stable 63-bit seed from a sequence of labels.

    Unlike ``hash()``, this is stable across interpreter runs (``hash`` is
    salted per-process for strings), so traces keyed by benchmark name are
    identical between sessions.

    >>> stable_seed("gcc", 2) == stable_seed("gcc", 2)
    True
    >>> stable_seed("gcc") != stable_seed("tex")
    True
    """
    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << 63) - 1)


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing generator, or None.

    Passing an existing generator returns it unchanged so that callers can
    thread one generator through a pipeline of helpers.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rng(base_seed: int, *labels: Union[str, int]) -> np.random.Generator:
    """Derive an independent generator, namespaced by ``base_seed`` + labels.

    Two generators spawned with different labels from the same base seed
    produce independent streams; the same labels produce the same stream.
    This lets the workload generator give each benchmark its own stream
    without the streams shifting when an unrelated benchmark is added to the
    suite (which consuming draws from a shared parent generator would cause).
    """
    return np.random.default_rng(np.random.SeedSequence([base_seed, stable_seed(*labels)]))
