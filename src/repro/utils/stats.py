"""Statistical helpers.

The paper reports CPI values as the *weighted harmonic mean* over all
benchmarks, with weights equal to each benchmark's fraction of total
execution time.  These helpers implement that and a few related means.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "weighted_harmonic_mean",
    "weighted_arithmetic_mean",
    "harmonic_mean",
    "geometric_mean",
    "percentage",
    "cumulative_distribution",
]


def weighted_harmonic_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted harmonic mean of ``values``.

    Defined as ``sum(w) / sum(w / v)``.  This is the correct way to average
    *rates* (such as instructions per cycle) when the weights are amounts of
    work.  The paper uses it to combine per-benchmark CPI values with weights
    proportional to each benchmark's share of total execution time.

    >>> round(weighted_harmonic_mean([1.0, 2.0], [1.0, 1.0]), 4)
    1.3333
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not values:
        raise ValueError("cannot average an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires strictly positive values")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total_weight = float(sum(weights))
    if total_weight == 0:
        raise ValueError("at least one weight must be positive")
    return total_weight / sum(w / v for v, w in zip(values, weights))


def harmonic_mean(values: Sequence[float]) -> float:
    """Unweighted harmonic mean.

    >>> round(harmonic_mean([1.0, 2.0]), 4)
    1.3333
    """
    return weighted_harmonic_mean(values, [1.0] * len(values))


def weighted_arithmetic_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean ``sum(w * v) / sum(w)``.

    Used for averaging quantities that add linearly, such as instruction-mix
    percentages weighted by instruction counts.
    """
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not values:
        raise ValueError("cannot average an empty sequence")
    total_weight = float(sum(weights))
    if total_weight <= 0:
        raise ValueError("total weight must be positive")
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    if not values:
        raise ValueError("cannot average an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentage(part: float, whole: float) -> float:
    """``part`` as a percentage of ``whole``; 0.0 when ``whole`` is zero.

    Returning 0.0 for an empty denominator keeps report code free of special
    cases for empty traces.
    """
    if whole == 0:
        return 0.0
    return 100.0 * part / whole


def cumulative_distribution(counts: Dict[int, int]) -> List[Tuple[int, float]]:
    """Turn a histogram ``{value: count}`` into a CDF.

    Returns ``[(value, fraction_at_or_below)]`` sorted by value.  Used to
    present the load-use slack (epsilon) distributions of Figures 6 and 7.

    >>> cumulative_distribution({0: 1, 3: 3})
    [(0, 0.25), (3, 1.0)]
    """
    total = sum(counts.values())
    if total == 0:
        return []
    result: List[Tuple[int, float]] = []
    running = 0
    for value in sorted(counts):
        running += counts[value]
        result.append((value, running / total))
    return result
