"""Unit conversions used throughout the paper and this reproduction.

The paper measures cache sizes in *words* (W) and *kilowords* (KW), where one
word is 4 bytes (the MIPS R2000 word size).  A "1 KW" instruction cache is
therefore 4 KB.  Block (line) sizes are given in words as well: the paper
evaluates 4 W, 8 W, and 16 W blocks.

Times are expressed in nanoseconds everywhere; there is no dedicated type for
them, but function and attribute names carry an ``_ns`` suffix when the unit
is not obvious from context.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "WORD_BYTES",
    "kw_to_words",
    "words_to_bytes",
    "words_to_kw",
    "bytes_to_words",
    "is_power_of_two",
    "log2_int",
]

#: Number of bytes in a machine word (MIPS R2000: 32-bit words).
WORD_BYTES = 4


def kw_to_words(kilowords: float) -> int:
    """Convert a size in kilowords to words.

    Fractional kiloword sizes are fine as long as they denote a whole
    number of words (0.5 KW = 512 W); anything else is rejected rather
    than silently truncated — ``int(0.3 * 1024)`` would yield 307 words,
    a geometry the caller never asked for and one that round-trips wrong
    through :func:`words_to_kw`.

    >>> kw_to_words(1)
    1024
    >>> kw_to_words(32)
    32768
    """
    exact = kilowords * 1024
    words = int(exact)
    if words != exact:
        raise ConfigurationError(
            f"{kilowords} KW is not a whole number of words"
        )
    if words <= 0:
        raise ConfigurationError(f"cache size must be positive, got {kilowords} KW")
    return words


def words_to_kw(words: int) -> float:
    """Convert a size in words to kilowords.

    >>> words_to_kw(4096)
    4.0
    """
    return words / 1024.0


def words_to_bytes(words: int) -> int:
    """Convert a size in words to bytes (4 bytes per word).

    >>> words_to_bytes(1024)
    4096
    """
    return words * WORD_BYTES


def bytes_to_words(nbytes: int) -> int:
    """Convert a size in bytes to whole words.

    Raises :class:`ConfigurationError` if ``nbytes`` is not word-aligned,
    because a misaligned size almost always indicates a unit mix-up.
    """
    if nbytes % WORD_BYTES != 0:
        raise ConfigurationError(f"{nbytes} bytes is not a whole number of words")
    return nbytes // WORD_BYTES


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two.

    >>> is_power_of_two(8)
    True
    >>> is_power_of_two(0)
    False
    >>> is_power_of_two(12)
    False
    """
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return the exact base-2 logarithm of a power-of-two integer.

    Raises :class:`ConfigurationError` for non-powers-of-two; cache geometry
    code relies on exact shifts, so silently rounding would corrupt indexing.

    >>> log2_int(1024)
    10
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"expected a power of two, got {value}")
    return value.bit_length() - 1
