"""Plain-text rendering of result tables and figure series.

The experiment harness regenerates every table and figure of the paper as
text: tables as aligned ASCII grids, figures as one series per line (the
"rows/series the paper reports").  Keeping the renderer here means the
experiment modules only assemble data.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple, Union

__all__ = ["render_table", "render_series"]

Cell = Union[str, int, float, None]


def _format_cell(value: Cell, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]], title="T"))
    T
    a | b
    --+------
    1 | 2.500
    """
    formatted: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in formatted)
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[Cell],
    series: Mapping[str, Sequence[Cell]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render figure data as a table with one column per series.

    ``series`` maps a series name (e.g. ``"b=2"``) to y-values aligned with
    ``x_values``.  This is how every "Figure N" of the paper is emitted.
    """
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x values"
            )
    headers = [x_label] + list(series)
    rows: List[List[Cell]] = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(headers, rows, title=title, precision=precision)
