"""Strict-JSON coercion shared by the CLI, ledger, and sweep service.

Experiment data dicts freely use tuple keys (e.g. ``(b, l)`` slot pairs)
and numpy scalars; JSON supports neither.  Service responses and the run
ledger are additionally serialized with ``allow_nan=False``, so bare
``NaN``/``Infinity`` tokens (not strict JSON, and rejected by many
downstream parsers) must never survive coercion.
"""

from __future__ import annotations

import math

__all__ = ["jsonable"]


def jsonable(value):
    """Convert experiment data to JSON-encodable structures.

    Tuple keys become comma-joined strings, numpy values their Python
    equivalents, and non-finite floats (NaN, ±Infinity) become ``None``.
    Anything else unencodable falls back to ``str``.
    """
    if isinstance(value, dict):
        return {
            ",".join(map(str, k)) if isinstance(k, tuple) else str(k): jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
