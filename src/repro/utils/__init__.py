"""Shared utilities: units, statistics, RNG handling, and table rendering.

These helpers are deliberately small and dependency-free so that every other
subpackage can use them without import cycles.
"""

from repro.utils.units import (
    WORD_BYTES,
    kw_to_words,
    words_to_bytes,
    words_to_kw,
    bytes_to_words,
    is_power_of_two,
    log2_int,
)
from repro.utils.stats import (
    weighted_harmonic_mean,
    weighted_arithmetic_mean,
    harmonic_mean,
    geometric_mean,
    percentage,
    cumulative_distribution,
)
from repro.utils.rng import make_rng, spawn_rng, stable_seed
from repro.utils.tables import render_table, render_series

__all__ = [
    "WORD_BYTES",
    "kw_to_words",
    "words_to_bytes",
    "words_to_kw",
    "bytes_to_words",
    "is_power_of_two",
    "log2_int",
    "weighted_harmonic_mean",
    "weighted_arithmetic_mean",
    "harmonic_mean",
    "geometric_mean",
    "percentage",
    "cumulative_distribution",
    "make_rng",
    "spawn_rng",
    "stable_seed",
    "render_table",
    "render_series",
]
