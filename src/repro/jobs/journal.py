"""Append-only, checksummed run journal.

A :class:`RunJournal` is one JSONL file per sweep inside a run
directory.  Every line is a self-contained record: a ``type``, the
record payload, and a ``crc`` — a truncated SHA-256 over the canonical
JSON rendering of everything else — so a partially written line (the
process died mid-``write``) is detectable and recoverable.

Crash-safety rules on load:

* a final line that does not parse, lacks its checksum, or fails the
  checksum is a *torn tail* — it is dropped (the shard it described
  simply re-executes) and overwritten by the next append;
* a corrupt line anywhere *before* the tail means the file was damaged
  by something other than a crash-during-append, and the journal
  refuses to load (:class:`~repro.errors.ConfigurationError`) rather
  than silently skipping committed work;
* the first record must be a ``run_header`` naming the measurement-spec
  digest, technology digest, and shard plan the journal was written
  under; resuming with a different session or plan is refused.

The journal is append-only by construction: records are written with
one ``write`` + ``flush`` + ``fsync`` per append (appends happen once
per shard, so durability costs nothing measurable next to shard
evaluation).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["RunJournal", "prepare_run_dir", "RUN_MARKER"]

#: Journal format version, embedded in (and required of) every header.
JOURNAL_VERSION = 1

#: Marker file identifying a directory as a repro.jobs run directory.
RUN_MARKER = "RUN.json"

#: Header fields that must match exactly for a resume to be accepted.
_IDENTITY_FIELDS = (
    "journal_version",
    "spec_digest",
    "tech_digest",
    "grid_digest",
    "shard_size",
    "shard_count",
    "config_count",
)


def _checksum(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def _encode(record: Dict[str, Any]) -> str:
    line = dict(record)
    line["crc"] = _checksum(record)
    return json.dumps(line, sort_keys=True, separators=(",", ":"))


def _decode(line: str) -> Optional[Dict[str, Any]]:
    """One verified record, or None if the line is torn/corrupt."""
    try:
        parsed = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(parsed, dict) or "crc" not in parsed or "type" not in parsed:
        return None
    crc = parsed.pop("crc")
    if crc != _checksum(parsed):
        return None
    return parsed


class RunJournal:
    """One sweep's append-only event log.

    Use :meth:`open` (which writes or verifies the ``run_header``)
    rather than constructing directly.  ``records`` holds every verified
    record, header included, in file order.
    """

    def __init__(self, path: Path, records: List[Dict[str, Any]]) -> None:
        self.path = Path(path)
        self.records = records

    # -- construction ----------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "RunJournal":
        """Read and verify an existing journal (no header checks).

        Recovers from a torn final record by truncating it away; any
        earlier corruption is fatal.
        """
        path = Path(path)
        records: List[Dict[str, Any]] = []
        if not path.exists():
            return cls(path, records)
        raw = path.read_text()
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        torn_tail = False
        for index, line in enumerate(lines):
            record = _decode(line)
            if record is None:
                if index == len(lines) - 1:
                    torn_tail = True
                    break
                raise ConfigurationError(
                    f"journal {path} is corrupt at line {index + 1} "
                    f"(not a torn tail); refusing to resume from it"
                )
            records.append(record)
        journal = cls(path, records)
        if torn_tail:
            journal._truncate_to_records()
        return journal

    @classmethod
    def open(cls, path: Path, header: Dict[str, Any]) -> "RunJournal":
        """Open for a run described by ``header``, creating or resuming.

        A fresh (or effectively empty) journal gets ``header`` written
        as its ``run_header``.  An existing journal must carry an
        identical identity — in particular the same measurement-spec
        digest — or a :class:`~repro.errors.ConfigurationError` refuses
        the resume.
        """
        journal = cls.load(path)
        if not journal.records:
            journal.path.parent.mkdir(parents=True, exist_ok=True)
            # A torn header (crash during the very first append) leaves
            # zero verified records; start the file over.
            if journal.path.exists():
                journal.path.unlink()
            journal.append("run_header", **header)
            return journal
        existing = journal.records[0]
        if existing.get("type") != "run_header":
            raise ConfigurationError(
                f"journal {path} does not start with a run_header; "
                f"refusing to resume from it"
            )
        for field in _IDENTITY_FIELDS:
            if existing.get(field) != header.get(field):
                raise ConfigurationError(
                    f"refusing to resume from journal {path}: {field} "
                    f"mismatch (journal has {existing.get(field)!r}, this "
                    f"run has {header.get(field)!r}) — the journal was "
                    f"written by a different session or shard plan; use a "
                    f"fresh --run-dir"
                )
        return journal

    # -- appending -------------------------------------------------------------

    def append(self, record_type: str, **data: Any) -> Dict[str, Any]:
        """Durably append one record (write + flush + fsync)."""
        record = {"type": record_type, **data}
        with open(self.path, "a") as handle:
            handle.write(_encode(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.records.append(record)
        return record

    def _truncate_to_records(self) -> None:
        """Rewrite the file to exactly the verified records (drops a torn tail)."""
        text = "".join(_encode(record) + "\n" for record in self.records)
        self.path.write_text(text)

    # -- replay ----------------------------------------------------------------

    @property
    def header(self) -> Optional[Dict[str, Any]]:
        if self.records and self.records[0].get("type") == "run_header":
            return self.records[0]
        return None

    @property
    def finished(self) -> bool:
        return any(r.get("type") == "run_completed" for r in self.records)

    def replay(self) -> Tuple[Dict[int, List[Dict[str, Any]]], Dict[int, int]]:
        """Fold the event log into resume state.

        Returns ``(completed, dispatched)``: per-shard committed point
        records (last commit wins, though shards commit at most once),
        and per-shard dispatch counts — the number of times the shard
        has *started* executing, which resumed runs carry forward so the
        journal records a global attempt index per shard.
        """
        completed: Dict[int, List[Dict[str, Any]]] = {}
        dispatched: Dict[int, int] = {}
        for record in self.records:
            kind = record.get("type")
            if kind == "shard_dispatched":
                shard = int(record["shard"])
                dispatched[shard] = dispatched.get(shard, 0) + 1
            elif kind == "shard_completed":
                completed[int(record["shard"])] = list(record["points"])
        return completed, dispatched


def prepare_run_dir(run_dir: Path, resume: bool) -> Path:
    """Create (or re-enter) a run directory.

    A directory that already holds a run marker is only re-entered with
    ``resume=True`` — starting a *fresh* run on top of an old journal
    would silently mix two runs' shards.  An empty or absent directory
    is always acceptable, resume flag or not.
    """
    run_dir = Path(run_dir)
    marker = run_dir / RUN_MARKER
    if marker.exists() and not resume:
        raise ConfigurationError(
            f"run directory {run_dir} already contains a run; pass --resume "
            f"to continue it or point --run-dir at a fresh directory"
        )
    (run_dir / "sweeps").mkdir(parents=True, exist_ok=True)
    if not marker.exists():
        marker.write_text(
            json.dumps({"format": "repro.jobs/run", "version": JOURNAL_VERSION})
            + "\n"
        )
    return run_dir
