"""Durable, resumable sweep runs (:mod:`repro.jobs`).

A *run* is a sweep whose progress survives the process: the grid is
split into deterministic shards, every shard's outcome is journaled to
an append-only checksummed JSONL file in a run directory, failed shards
are retried with capped exponential backoff, and a restarted run replays
the journal so only unfinished shards execute — with results guaranteed
identical to an uninterrupted serial sweep.

Entry points:

* :class:`~repro.jobs.runner.JobConfig` — per-run policy (run directory,
  resume flag, retry budget, shard size), attached to a measurement
  session via ``SuiteMeasurement.attach_jobs``;
* :class:`~repro.jobs.runner.JobRunner` — executes one sweep durably
  (``DesignOptimizer.sweep`` routes through it automatically when a
  job config is attached);
* :class:`~repro.jobs.journal.RunJournal` — the crash-safe journal;
* :mod:`repro.jobs.faults` — deterministic fault injection used by the
  tests and the CI kill-and-resume smoke job.
"""

from repro.jobs.faults import FaultInjector, InjectedCrash, InjectedFault
from repro.jobs.journal import RunJournal, prepare_run_dir
from repro.jobs.runner import JobConfig, JobRunner, JobStats

__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "JobConfig",
    "JobRunner",
    "JobStats",
    "RunJournal",
    "prepare_run_dir",
]
