"""Durable sweep execution: shards, retries, journaled checkpoints.

:class:`JobRunner` wraps one :class:`~repro.core.optimizer.
DesignOptimizer` sweep in a crash-safe protocol:

1. the (order-preserving, deduplicated) config grid is split into
   deterministic shards of ``shard_size`` points;
2. each shard's lifecycle is journaled — ``shard_dispatched`` before
   execution, ``shard_completed`` (with the serialized
   :class:`~repro.core.optimizer.DesignPoint` values) or
   ``shard_failed`` after;
3. a failed shard is retried up to ``max_retries`` times with capped
   exponential backoff whose jitter is *seeded* (the same run always
   waits the same spans), and the final attempt falls back to serial
   in-process evaluation so a persistently broken worker pool cannot
   sink a run;
4. on restart, :meth:`JobRunner.run` replays the journal: completed
   shards feed their points straight into the
   :class:`~repro.engine.store.ArtifactStore` and only unfinished
   shards execute.

Because every shard's points land in the store under the same artifact
keys the serial path uses, the sweep's final assembly (an in-order
``evaluate`` pass, all store hits) is byte-identical to an
uninterrupted ``--jobs 1`` run, resumed or not.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.config import BranchScheme, LoadScheme, PenaltyMode, SystemConfig
from repro.errors import ConfigurationError
from repro.jobs.faults import FaultInjector, InjectedCrash, worker_exit_evaluate
from repro.jobs.journal import JOURNAL_VERSION, RunJournal, prepare_run_dir
from repro.utils.rng import DEFAULT_SEED, spawn_rng

__all__ = ["JobConfig", "JobRunner", "JobStats"]

#: Ceiling on one backoff sleep, seconds.
DEFAULT_BACKOFF_CAP_S = 2.0
#: First-retry backoff, seconds (doubles per attempt up to the cap).
DEFAULT_BACKOFF_BASE_S = 0.05


@dataclass
class JobStats:
    """Aggregate counters across every sweep of one durable run."""

    sweeps: int = 0
    sweeps_resumed: int = 0
    shards_total: int = 0
    shards_replayed: int = 0
    shards_executed: int = 0
    shard_retries: int = 0
    points_replayed: int = 0
    points_executed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class JobConfig:
    """Policy for durable runs, attached to a measurement session.

    Args:
        run_dir: Directory holding the run marker and per-sweep journals.
        resume: Continue an existing run directory (required when the
            directory already holds a run).
        max_retries: Extra attempts per shard after its first failure.
        shard_size: Design points per shard (the checkpoint granularity:
            smaller shards lose less work to a crash, larger shards
            journal less often).
        seed: Base seed for the deterministic backoff jitter.
        faults: Optional scripted fault injector (tests / CI only).
        sleep: Backoff sleep hook (tests inject a recorder).
    """

    run_dir: Path
    resume: bool = False
    max_retries: int = 2
    shard_size: int = 8
    seed: int = DEFAULT_SEED
    faults: Optional[FaultInjector] = None
    sleep: Callable[[float], None] = time.sleep
    stats: JobStats = field(default_factory=JobStats)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be at least 0, got {self.max_retries}"
            )
        if self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be at least 1, got {self.shard_size}"
            )
        self.run_dir = Path(self.run_dir)
        self._prepared = False

    def prepare(self) -> None:
        """Create/validate the run directory (idempotent per config)."""
        if not self._prepared:
            prepare_run_dir(self.run_dir, self.resume)
            self._prepared = True


# -- DesignPoint (de)serialization ----------------------------------------


def _enum_value(value: Any) -> Any:
    return value.value if hasattr(value, "value") else value


def config_to_params(config: SystemConfig) -> Dict[str, Any]:
    """A SystemConfig as plain JSON scalars (shared with artifact keys)."""
    from dataclasses import asdict

    return {name: _enum_value(value) for name, value in asdict(config).items()}


def config_from_params(params: Dict[str, Any]) -> SystemConfig:
    """Rebuild a SystemConfig from its scalar-parameter rendering."""
    return SystemConfig(
        icache_kw=params["icache_kw"],
        dcache_kw=params["dcache_kw"],
        block_words=params["block_words"],
        branch_slots=params["branch_slots"],
        load_slots=params["load_slots"],
        penalty=params["penalty"],
        penalty_mode=PenaltyMode(params["penalty_mode"]),
        branch_scheme=BranchScheme(params["branch_scheme"]),
        load_scheme=LoadScheme(params["load_scheme"]),
    )


def point_to_record(point: Any) -> Dict[str, Any]:
    """One DesignPoint as a journal-record payload (exact float repr)."""
    return {
        "config": config_to_params(point.config),
        "cpi": point.cpi,
        "cycle_time_ns": point.cycle_time_ns,
        "epi_nj": point.epi_nj,
        "area_cm2": point.area_cm2,
    }


def point_from_record(record: Dict[str, Any]) -> Any:
    from repro.core.optimizer import DesignPoint

    return DesignPoint(
        config=config_from_params(record["config"]),
        cpi=record["cpi"],
        cycle_time_ns=record["cycle_time_ns"],
        epi_nj=record.get("epi_nj", 0.0),
        area_cm2=record.get("area_cm2", 0.0),
    )


def grid_digest(
    configs: Sequence[SystemConfig], shard_size: int, extra: Sequence[Any] = ()
) -> str:
    """Stable identity of a shard plan: the grid, its order, the split."""
    payload = {
        "configs": [config_to_params(config) for config in configs],
        "shard_size": shard_size,
        "extra": list(extra),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


class JobRunner:
    """Executes one optimizer sweep as a durable, resumable run."""

    def __init__(self, optimizer: Any, config: JobConfig) -> None:
        self.optimizer = optimizer
        self.config = config
        self.tracer = optimizer.tracer

    # -- plan ------------------------------------------------------------------

    def _shard_plan(self, configs: Sequence[SystemConfig]) -> List[List[SystemConfig]]:
        unique = list(dict.fromkeys(configs))
        size = self.config.shard_size
        return [unique[i : i + size] for i in range(0, len(unique), size)]

    def _journal_for(
        self, shards: List[List[SystemConfig]], digest: str
    ) -> RunJournal:
        from repro.core.optimizer import DESIGN_POINT_VERSION

        header = {
            "journal_version": JOURNAL_VERSION,
            "spec_digest": self.optimizer.measurement.spec().digest(),
            "tech_digest": self.optimizer._tech_digest,
            "grid_digest": digest,
            "shard_size": self.config.shard_size,
            "shard_count": len(shards),
            "config_count": sum(len(shard) for shard in shards),
            "design_point_version": DESIGN_POINT_VERSION,
            "max_retries": self.config.max_retries,
        }
        path = self.config.run_dir / "sweeps" / f"sweep-{digest}.jsonl"
        return RunJournal.open(path, header)

    # -- execution -------------------------------------------------------------

    def run(self, configs: Sequence[SystemConfig]) -> None:
        """Durably evaluate the grid; afterwards every point is a store hit."""
        from repro.core.optimizer import DESIGN_POINT_VERSION

        self.config.prepare()
        shards = self._shard_plan(configs)
        if not shards:
            return
        digest = grid_digest(
            [config for shard in shards for config in shard],
            self.config.shard_size,
            extra=[self.optimizer._tech_digest, DESIGN_POINT_VERSION],
        )
        journal = self._journal_for(shards, digest)
        completed, dispatched = journal.replay()
        stats = self.config.stats
        stats.sweeps += 1
        stats.shards_total += len(shards)
        with self.tracer.span(
            "jobs.run", sweep=digest, shards=len(shards)
        ) as span:
            if completed:
                stats.sweeps_resumed += 1
                span.count("shards_replayed", len(completed))
            self._replay_completed(completed, span)
            for index, shard in enumerate(shards):
                if index in completed:
                    stats.shards_replayed += 1
                    continue
                self._run_shard(journal, index, shard, dispatched.get(index, 0), span)
                stats.shards_executed += 1
            if not journal.finished:
                journal.append("run_completed")

    def _replay_completed(
        self, completed: Dict[int, List[Dict[str, Any]]], span: Any
    ) -> None:
        store = self.optimizer.measurement.store
        replayed = 0
        for records in completed.values():
            for record in records:
                self._store_point(store, point_from_record(record))
                replayed += 1
        if replayed:
            span.count("points_replayed", replayed)
            self.config.stats.points_replayed += replayed

    def _store_point(self, store: Any, point: Any) -> None:
        from repro.core.optimizer import DESIGN_POINT_VERSION, _config_params

        store.put(
            "design_point",
            DESIGN_POINT_VERSION,
            point,
            tech=self.optimizer._tech_digest,
            **_config_params(point.config),
        )

    def _run_shard(
        self,
        journal: RunJournal,
        index: int,
        shard: List[SystemConfig],
        prior_attempts: int,
        span: Any,
    ) -> None:
        """One shard through dispatch → execute → commit, with retries.

        Attempt numbering is global across resumes (``prior_attempts``
        comes from the journal), but each invocation gets a fresh retry
        budget — a run killed by infrastructure should not inherit its
        predecessor's exhausted retries.
        """
        config = self.config
        faults = config.faults
        for local_try in range(config.max_retries + 1):
            attempt = prior_attempts + local_try
            last = local_try == config.max_retries
            journal.append(
                "shard_dispatched", shard=index, attempt=attempt, configs=len(shard)
            )
            try:
                with self.tracer.span(
                    "jobs.shard", shard=index, attempt=attempt
                ) as shard_span:
                    if faults is not None:
                        faults.before_shard(index, attempt)
                    points = self._execute_shard(shard, index, attempt, serial=last)
                    shard_span.count("points", len(points))
            except InjectedCrash:
                raise
            except Exception as exc:  # noqa: BLE001 — every failure is retryable
                journal.append(
                    "shard_failed",
                    shard=index,
                    attempt=attempt,
                    error=f"{type(exc).__name__}: {exc}"[:500],
                )
                config.stats.shard_retries += 1
                span.count("shard_retries")
                if last:
                    raise ConfigurationError(
                        f"shard {index} failed on every attempt "
                        f"({attempt + 1} dispatches recorded): {exc}"
                    ) from exc
                config.sleep(self._backoff_s(journal, index, attempt))
                continue
            journal.append(
                "shard_completed",
                shard=index,
                attempt=attempt,
                points=[point_to_record(point) for point in points],
            )
            store = self.optimizer.measurement.store
            for point in points:
                self._store_point(store, point)
            config.stats.points_executed += len(points)
            span.count("points_executed", len(points))
            if faults is not None:
                faults.after_commit(index)
            return

    def _execute_shard(
        self,
        shard: List[SystemConfig],
        index: int,
        attempt: int,
        serial: bool,
    ) -> List[Any]:
        """Evaluate one shard's points (parallel when the executor is)."""
        optimizer = self.optimizer
        executor = optimizer.executor
        if not serial and executor.is_parallel and len(shard) >= 2:
            from repro.engine.executor import evaluate_design_point

            measurement = optimizer.measurement
            spec = measurement.spec()
            executor.prime(spec.digest(), measurement)
            items: List[Any] = [
                (spec, optimizer.tech, optimizer.phys, config) for config in shard
            ]
            fn: Callable[[Any], Any] = evaluate_design_point
            faults = self.config.faults
            if faults is not None and faults.wants_worker_exit(index, attempt):
                flag = self.config.run_dir / f"fault-worker-exit-{index}"
                items = [
                    (str(flag) if position == 0 else None, item)
                    for position, item in enumerate(items)
                ]
                fn = worker_exit_evaluate
            return executor.map(fn, items)
        optimizer._warm_miss_cubes(shard)
        return [optimizer.evaluate(config) for config in shard]

    def _backoff_s(self, journal: RunJournal, shard: int, attempt: int) -> float:
        """Capped exponential backoff with seeded, deterministic jitter."""
        base = min(
            DEFAULT_BACKOFF_CAP_S, DEFAULT_BACKOFF_BASE_S * (2.0 ** attempt)
        )
        digest = journal.header["grid_digest"] if journal.header else ""
        rng = spawn_rng(self.config.seed, "jobs.backoff", digest, shard, attempt)
        return base * (0.5 + 0.5 * float(rng.random()))
