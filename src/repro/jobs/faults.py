"""Deterministic fault injection for durable runs.

The injector exists to *prove* the jobs layer's crash-safety story:
tests (and the CI kill-and-resume smoke job) run a real sweep with a
scripted fault, then show that a resumed run completes and produces
byte-identical results.  Faults are fully deterministic — each is an
explicit ``kind:shard[:attempt]`` trigger, so the same spec always
fails the same shard at the same point.

Kinds:

* ``task-error:S[:A]`` — raise a transient :class:`InjectedFault`
  inside shard ``S`` on attempt ``A`` (default 0); exercises the
  runner's retry/backoff path.  The fault is *transient*: it fires only
  on the named attempt, so the retry succeeds.
* ``worker-exit:S`` — on shard ``S``'s first attempt, the worker
  process evaluating the shard's first design point hard-exits
  (``os._exit``) once; exercises the executor's broken-pool chunk
  retry underneath a durable run.  Only meaningful on a parallel
  executor (a no-op when the shard runs serially).
* ``abort:S`` — raise :class:`InjectedCrash` immediately after shard
  ``S``'s journal commit, simulating the *parent* process dying
  mid-run; the run directory is then resumable.

:func:`truncate_journal_tail` additionally mutilates a journal's final
bytes, simulating a crash mid-append, for the tail-recovery tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "truncate_journal_tail",
]

_KINDS = ("task-error", "worker-exit", "abort")


class InjectedFault(ReproError):
    """A scripted *transient* failure (the runner retries these)."""


class InjectedCrash(ReproError):
    """A scripted hard crash (the runner never retries these)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: what, where, when."""

    kind: str
    shard: int
    attempt: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        parts = text.split(":")
        if len(parts) not in (2, 3) or parts[0] not in _KINDS:
            raise ConfigurationError(
                f"bad fault spec {text!r}; expected kind:shard[:attempt] "
                f"with kind in {_KINDS}"
            )
        try:
            shard = int(parts[1])
            attempt = int(parts[2]) if len(parts) == 3 else 0
        except ValueError:
            raise ConfigurationError(
                f"bad fault spec {text!r}: shard and attempt must be integers"
            ) from None
        return cls(kind=parts[0], shard=shard, attempt=attempt)


class FaultInjector:
    """Fires scripted faults at the JobRunner's injection points."""

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs = list(specs)

    @classmethod
    def parse(cls, texts: Sequence[str]) -> "FaultInjector":
        return cls([FaultSpec.parse(text) for text in texts])

    def _match(self, kind: str, shard: int, attempt: Optional[int] = None):
        for spec in self.specs:
            if spec.kind != kind or spec.shard != shard:
                continue
            if attempt is None or spec.attempt == attempt:
                return spec
        return None

    def before_shard(self, shard: int, attempt: int) -> None:
        """Raise a transient fault if one is scripted for this attempt."""
        if self._match("task-error", shard, attempt):
            raise InjectedFault(
                f"injected transient fault in shard {shard} attempt {attempt}"
            )

    def wants_worker_exit(self, shard: int, attempt: int) -> bool:
        return attempt == 0 and self._match("worker-exit", shard) is not None

    def after_commit(self, shard: int) -> None:
        """Simulate the parent dying right after a shard commit."""
        if self._match("abort", shard):
            raise InjectedCrash(
                f"injected crash after committing shard {shard} "
                f"(resume the run directory to continue)"
            )


def worker_exit_evaluate(item: Tuple[Optional[str], Any]) -> Any:
    """Worker task wrapper: hard-exit once (flag-file guarded), then behave.

    Picklable and module-level so the process backend can ship it; the
    flag file makes the exit one-shot, so the executor's fresh pool (or
    its per-chunk retry) completes the work on the next dispatch.
    """
    flag, inner = item
    if flag is not None and not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.write("worker exited here\n")
        os._exit(17)
    from repro.engine.executor import evaluate_design_point

    return evaluate_design_point(inner)


def truncate_journal_tail(path: Path, drop_bytes: int = 7) -> None:
    """Chop bytes off a journal's end, simulating a crash mid-append."""
    path = Path(path)
    size = path.stat().st_size
    with open(path, "rb+") as handle:
        handle.truncate(max(0, size - drop_bytes))
