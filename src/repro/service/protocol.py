"""Design-space query model: parsing, canonicalization, digests.

A sweep query names a *scale* (which measurement session answers it), an
*objective*, and a *grid* of :class:`~repro.core.config.SystemConfig`
design points.  Two queries that mean the same thing must hash to the
same :attr:`SweepQuery.digest` — that digest is the memoisation key for
the whole service, so canonicalization is the contract here:

* every config is normalized field by field (``8`` and ``8.0`` are the
  same cache size; enum values accept their string spellings; omitted
  fields take the :class:`SystemConfig` defaults);
* the grid is deduplicated and sorted into a canonical order, so listing
  the same points twice, or in a different order, or via the compact
  ``{"base": ..., "axes": ...}`` cross-product form, all canonicalize to
  one grid;
* the digest covers the resolved scale, the objective, the canonical
  grid, the technology digest, and the relevant artifact versions — the
  same inputs that make two sweeps byte-identical.

The tenant is deliberately *not* part of the digest: memoisation is
shared, so one tenant's finished sweep answers every tenant's identical
query.  Tenancy only affects queueing fairness and namespacing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import BranchScheme, LoadScheme, PenaltyMode, SystemConfig
from repro.core.frontier import objective_value, pareto_frontier, within_budgets
from repro.core.optimizer import DESIGN_POINT_VERSION, point_order_key
from repro.errors import ConfigurationError
from repro.jobs.runner import config_to_params
from repro.physical.technology import DEFAULT_PHYSICAL
from repro.timing.technology import DEFAULT_TECHNOLOGY
from repro.trace.io import cache_key
from repro.utils.jsonio import jsonable

__all__ = [
    "SERVICE_SWEEP_VERSION",
    "OBJECTIVES",
    "SweepQuery",
    "parse_query",
    "normalize_config",
    "canonical_grid",
    "canonical_objective",
    "result_payload",
]

#: Bump when the service's answer payload changes shape (memo invalidation).
#: 2: points carry epi/area/edp/power, payloads carry the Pareto frontier,
#: queries carry budgets and the multi-objective family.
SERVICE_SWEEP_VERSION = 2

#: Supported optimization objectives (canonical spellings).
OBJECTIVES = ("min_tpi", "min_epi", "min_edp", "frontier")

#: Accepted objective spellings -> canonical name.  Canonicalizing here
#: (not just validating) is what makes ``"objective": "tpi"`` and
#: ``"objective": "min_tpi"`` the *same query*, hence the same digest,
#: hence one memoised sweep.
_OBJECTIVE_ALIASES = {
    "min_tpi": "min_tpi",
    "tpi": "min_tpi",
    "min_epi": "min_epi",
    "epi": "min_epi",
    "min_edp": "min_edp",
    "edp": "min_edp",
    "frontier": "frontier",
    "pareto": "frontier",
}

#: The scalar each single-objective canonical name minimizes.
_OBJECTIVE_SCALARS = {"min_tpi": "tpi", "min_epi": "epi", "min_edp": "edp"}


def canonical_objective(objective: Any) -> str:
    """An objective spelling -> its canonical name (or an error)."""
    if isinstance(objective, str):
        canonical = _OBJECTIVE_ALIASES.get(objective.lower())
        if canonical is not None:
            return canonical
    raise ConfigurationError(
        f"unknown objective {objective!r}; choose from {list(OBJECTIVES)} "
        f"(aliases: {sorted(set(_OBJECTIVE_ALIASES) - set(OBJECTIVES))})"
    )

#: Upper bound on canonical grid size per query — a service request is a
#: bounded unit of work, not an arbitrary batch job.
MAX_GRID_POINTS = 4096

#: Upper bound on tenant-name length (a queueing label, not a payload).
_MAX_TENANT_LEN = 64

_FLOAT_FIELDS = ("icache_kw", "dcache_kw", "penalty")
_INT_FIELDS = ("block_words", "branch_slots", "load_slots")
_ENUM_FIELDS: Dict[str, Any] = {
    "penalty_mode": PenaltyMode,
    "branch_scheme": BranchScheme,
    "load_scheme": LoadScheme,
}
_CONFIG_FIELDS = frozenset(_FLOAT_FIELDS + _INT_FIELDS) | frozenset(_ENUM_FIELDS)

#: Technology digest baked into every query digest (the service always
#: evaluates against the paper's default delay + physical technologies)
#: — computed exactly the way :class:`~repro.core.optimizer.
#: DesignOptimizer` keys its design-point artifacts, so the memo and the
#: point cache agree.
_TECH_DIGEST = cache_key(
    **asdict(DEFAULT_TECHNOLOGY),
    **{f"phys_{name}": value for name, value in asdict(DEFAULT_PHYSICAL).items()},
)


def _coerce_float(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"config field {name!r} must be a number, got {value!r}"
        )
    return float(value)


def _coerce_int(name: str, value: Any) -> int:
    if isinstance(value, bool):
        raise ConfigurationError(
            f"config field {name!r} must be an integer, got {value!r}"
        )
    if isinstance(value, float):
        if not value.is_integer():
            raise ConfigurationError(
                f"config field {name!r} must be integral, got {value!r}"
            )
        value = int(value)
    if not isinstance(value, int):
        raise ConfigurationError(
            f"config field {name!r} must be an integer, got {value!r}"
        )
    return value


def _coerce_enum(name: str, value: Any, enum_cls: Any) -> Any:
    if isinstance(value, enum_cls):
        return value
    try:
        return enum_cls(value)
    except ValueError:
        choices = sorted(member.value for member in enum_cls)
        raise ConfigurationError(
            f"config field {name!r} must be one of {choices}, got {value!r}"
        ) from None


def normalize_config(params: Mapping[str, Any]) -> SystemConfig:
    """One grid entry -> a validated, canonically-typed SystemConfig.

    Unknown fields are an error (a typo'd field silently taking its
    default would change the meaning of the query); omitted fields take
    the :class:`SystemConfig` defaults, so an explicit default and an
    omission canonicalize identically.
    """
    if not isinstance(params, Mapping):
        raise ConfigurationError(
            f"grid entries must be JSON objects, got {type(params).__name__}"
        )
    unknown = sorted(set(params) - _CONFIG_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"unknown config field(s) {unknown}; valid fields: "
            f"{sorted(_CONFIG_FIELDS)}"
        )
    clean: Dict[str, Any] = {}
    for name, value in params.items():
        if name in _ENUM_FIELDS:
            clean[name] = _coerce_enum(name, value, _ENUM_FIELDS[name])
        elif name in _INT_FIELDS:
            clean[name] = _coerce_int(name, value)
        else:
            clean[name] = _coerce_float(name, value)
    return SystemConfig(**clean)


def _config_sort_key(config: SystemConfig) -> str:
    return json.dumps(config_to_params(config), sort_keys=True)


def canonical_grid(configs: Iterable[SystemConfig]) -> Tuple[SystemConfig, ...]:
    """Deduplicate and order a grid so equivalent grids compare equal."""
    unique = list(dict.fromkeys(configs))
    return tuple(sorted(unique, key=_config_sort_key))


def _expand_axes(grid: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """The compact cross-product form: base params x per-field axes."""
    base = grid.get("base", {})
    axes = grid.get("axes", {})
    extra = sorted(set(grid) - {"base", "axes"})
    if extra:
        raise ConfigurationError(
            f"grid object supports only 'base' and 'axes' keys, got {extra}"
        )
    if not isinstance(base, Mapping) or not isinstance(axes, Mapping):
        raise ConfigurationError("grid 'base' and 'axes' must be JSON objects")
    for name, values in axes.items():
        if name not in _CONFIG_FIELDS:
            raise ConfigurationError(
                f"unknown axis {name!r}; valid fields: {sorted(_CONFIG_FIELDS)}"
            )
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise ConfigurationError(f"axis {name!r} must be a list of values")
        if not values:
            raise ConfigurationError(f"axis {name!r} must not be empty")
    expanded: List[Dict[str, Any]] = [dict(base)]
    for name in sorted(axes):
        expanded = [
            {**entry, name: value} for entry in expanded for value in axes[name]
        ]
        if len(expanded) > MAX_GRID_POINTS:
            raise ConfigurationError(
                f"grid expands past {MAX_GRID_POINTS} points"
            )
    return expanded


@dataclass(frozen=True)
class SweepQuery:
    """One canonical design-space question.

    ``configs`` is already canonical (deduplicated, sorted); construct
    through :func:`parse_query` rather than directly unless the grid was
    canonicalized by hand.
    """

    scale: str
    configs: Tuple[SystemConfig, ...]
    objective: str = "min_tpi"
    tenant: str = "public"
    max_area_cm2: Optional[float] = None
    max_power_w: Optional[float] = None

    @property
    def digest(self) -> str:
        """The memoisation key: same meaning -> same digest."""
        payload = {
            "service_version": SERVICE_SWEEP_VERSION,
            "design_point_version": DESIGN_POINT_VERSION,
            "tech": _TECH_DIGEST,
            "scale": self.scale,
            "objective": self.objective,
            "budgets": [self.max_area_cm2, self.max_power_w],
            "configs": [config_to_params(config) for config in self.configs],
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:24]


def _check_tenant(tenant: Any) -> str:
    if not isinstance(tenant, str) or not tenant:
        raise ConfigurationError(f"tenant must be a non-empty string: {tenant!r}")
    if len(tenant) > _MAX_TENANT_LEN or not all(
        ch.isalnum() or ch in "-_." for ch in tenant
    ):
        raise ConfigurationError(
            f"tenant {tenant!r} must be <= {_MAX_TENANT_LEN} chars of "
            f"[alphanumeric - _ .]"
        )
    return tenant


def parse_query(
    payload: Mapping[str, Any], scales: Optional[Iterable[str]] = None
) -> SweepQuery:
    """A JSON request body -> a canonical :class:`SweepQuery`.

    Args:
        payload: Parsed request JSON: ``{"scale", "grid", "objective",
            "tenant"}``; ``grid`` is either a list of config objects or
            the compact ``{"base", "axes"}`` cross-product form.
        scales: Valid scale names (default: the standard quick/full
            table) — the service passes its registry's scales so custom
            deployments can serve custom session sizes.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError("query must be a JSON object")
    known = {
        "scale",
        "grid",
        "objective",
        "tenant",
        "wait",
        "max_area_cm2",
        "max_power_w",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown query field(s) {unknown}; valid fields: {sorted(known)}"
        )
    valid_scales = sorted(
        scales if scales is not None else ("quick", "full")
    )
    scale = payload.get("scale", "quick")
    if scale not in valid_scales:
        raise ConfigurationError(
            f"unknown scale {scale!r}; choose from {valid_scales}"
        )
    objective = canonical_objective(payload.get("objective", "min_tpi"))
    budgets = {}
    for name in ("max_area_cm2", "max_power_w"):
        value = payload.get(name)
        if value is None:
            budgets[name] = None
            continue
        value = _coerce_float(name, value)
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")
        budgets[name] = value
    tenant = _check_tenant(payload.get("tenant", "public"))
    grid = payload.get("grid")
    if isinstance(grid, Mapping):
        entries: List[Mapping[str, Any]] = _expand_axes(grid)
    elif isinstance(grid, Sequence) and not isinstance(grid, (str, bytes)):
        entries = list(grid)
    else:
        raise ConfigurationError(
            "query 'grid' must be a list of config objects or a "
            "{'base', 'axes'} object"
        )
    if not entries:
        raise ConfigurationError("query grid must contain at least one point")
    if len(entries) > MAX_GRID_POINTS:
        raise ConfigurationError(
            f"query grid has {len(entries)} points; the service caps one "
            f"query at {MAX_GRID_POINTS}"
        )
    configs = canonical_grid(normalize_config(entry) for entry in entries)
    return SweepQuery(
        scale=scale,
        configs=configs,
        objective=objective,
        tenant=tenant,
        max_area_cm2=budgets["max_area_cm2"],
        max_power_w=budgets["max_power_w"],
    )


def result_payload(query: SweepQuery, points: Sequence[Any]) -> Dict[str, Any]:
    """The JSON answer for a finished sweep: points, frontier, and best.

    Point order follows the canonical grid order, so identical queries
    produce byte-identical payloads regardless of which client's
    submission actually executed.  Budgets filter the eligible set
    before both the frontier and the best; ``best`` is None for the
    ``frontier`` objective and when no point fits the budgets.
    """
    rendered = [
        {
            "config": jsonable(config_to_params(point.config)),
            "cpi": point.cpi,
            "cycle_time_ns": point.cycle_time_ns,
            "tpi_ns": point.tpi_ns,
            "epi_nj": point.epi_nj,
            "area_cm2": point.area_cm2,
            "edp": point.edp,
            "power_w": point.power_w,
        }
        for point in points
    ]
    index_of = {id(point): i for i, point in enumerate(points)}
    eligible = within_budgets(
        points, max_area_cm2=query.max_area_cm2, max_power_w=query.max_power_w
    )
    frontier = [rendered[index_of[id(point)]] for point in pareto_frontier(eligible)]
    best = None
    if eligible and query.objective != "frontier":
        scalar = _OBJECTIVE_SCALARS[query.objective]
        winner = min(
            eligible,
            key=lambda point: (objective_value(point, scalar), point_order_key(point)),
        )
        best = rendered[index_of[id(winner)]]
    return jsonable(
        {
            "digest": query.digest,
            "scale": query.scale,
            "objective": query.objective,
            "max_area_cm2": query.max_area_cm2,
            "max_power_w": query.max_power_w,
            "point_count": len(rendered),
            "eligible_count": len(eligible),
            "points": rendered,
            "frontier": frontier,
            "frontier_count": len(frontier),
            "best": best,
        }
    )
