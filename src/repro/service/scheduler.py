"""Fair, memoising sweep scheduler: the service's execution core.

One :class:`SweepScheduler` owns

* a *service store* — an :class:`~repro.engine.store.ArtifactStore`
  holding finished answers under ``service_sweep`` keys (the memo tier:
  an identical query is answered without touching a simulator), with an
  optional disk byte budget so many tenants' artifacts coexist;
* per-tenant FIFO queues drained round-robin by a small pool of worker
  threads — a tenant hammering the service with a burst cannot starve
  another tenant's single query, because each scheduling turn takes at
  most one job per tenant;
* an in-flight table keyed by query digest — concurrent identical
  queries *coalesce* onto one job, so ten clients asking the same
  question cost one simulation;
* per-scale measurement sessions (built lazily through a
  :class:`~repro.engine.session.SessionRegistry`) and a per-scale lock:
  sessions are not thread-safe, so two jobs on the same scale serialize
  while jobs on different scales overlap.

Execution itself goes through the durable-jobs layer: each job attaches
a :class:`~repro.jobs.JobConfig` spooled under the scheduler's spool
directory and runs the sweep via :class:`~repro.jobs.runner.JobRunner`,
so a service crash mid-sweep resumes from the journal when the query is
re-submitted (same digest -> same run directory).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional

import numpy as np

from repro.engine.executor import teardown_failures
from repro.engine.session import SessionRegistry
from repro.engine.store import ArtifactStore
from repro.errors import ConfigurationError
from repro.jobs import JobConfig
from repro.jobs.journal import RUN_MARKER
from repro.service.events import JobEventBus, SpanPublishingTracer
from repro.service.protocol import (
    SERVICE_SWEEP_VERSION,
    SweepQuery,
    result_payload,
)

__all__ = ["SweepJob", "SweepScheduler"]

#: Span names published on job event streams — the progress-bearing
#: spans (shards, cubes, traces), not every inner timer.
PROGRESS_SPANS = frozenset(
    {
        "jobs.run",
        "jobs.shard",
        "optimizer.sweep",
        "optimizer.frontier",
        "optimizer.serial_fallback",
        "imiss.cube",
        "dmiss.cube",
        "cube.partition",
        "cube.reduce",
        "cube.progress",
        "cube.coarse",
        "cube.serial_fallback",
        "session.build",
        "session.prefetch_traces",
        "trace.synthesize",
    }
)

#: Finished jobs kept for GET /jobs/<id> before the oldest are retired.
_MAX_FINISHED_JOBS = 512


def _encode_memo(payload: Mapping[str, Any]) -> Dict[str, np.ndarray]:
    """A finished answer as a one-array bundle the disk tier can hold.

    The artifact store's disk tier persists numpy bundles, so the memo
    rides as UTF-8 JSON in a ``uint8`` array — which also means memoised
    answers participate in the store's LRU byte budget like any other
    artifact.
    """
    blob = json.dumps(payload, sort_keys=True).encode()
    return {"json": np.frombuffer(blob, dtype=np.uint8).copy()}


def _decode_memo(arrays: Any) -> Optional[Dict[str, Any]]:
    """Inverse of :func:`_encode_memo`; None for anything malformed."""
    if not isinstance(arrays, Mapping) or "json" not in arrays:
        return None
    try:
        payload = json.loads(np.asarray(arrays["json"], dtype=np.uint8).tobytes())
    except (ValueError, TypeError):
        return None
    return payload if isinstance(payload, dict) else None


@dataclass
class SweepJob:
    """One scheduled (or memo-answered) query and its lifecycle."""

    id: str
    query: SweepQuery
    tenant: str
    state: str = "queued"  # queued | running | done | failed
    cache_hit: bool = False
    coalesced: int = 0
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    submitted_s: float = 0.0
    started_s: float = 0.0
    finished_s: float = 0.0
    done: threading.Event = field(default_factory=threading.Event)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.done.wait(timeout)

    def payload(self, include_result: bool = True) -> Dict[str, Any]:
        """JSON rendering for the HTTP layer."""
        body: Dict[str, Any] = {
            "job_id": self.id,
            "digest": self.query.digest,
            "tenant": self.tenant,
            "scale": self.query.scale,
            "objective": self.query.objective,
            "point_count": len(self.query.configs),
            "state": self.state,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
        }
        if self.error is not None:
            body["error"] = self.error
        if self.finished_s and self.submitted_s:
            body["wall_s"] = self.finished_s - self.submitted_s
        if include_result and self.result is not None:
            body["result"] = self.result
        return body


class SweepScheduler:
    """Round-robin fair, memoising scheduler over JobRunner sweeps.

    Args:
        registry: Session registry supplying per-scale measurements
            (default: a private one, so embedding a scheduler never
            perturbs the CLI's default sessions).
        store: The service store for finished answers (default: a
            memory+disk store namespaced ``service`` in the standard
            cache dir).
        workers: Worker-thread count (jobs on distinct scales overlap).
        spool_dir: Root for per-job durable run directories; ``None``
            disables the durability layer (tests mostly).
        max_disk_bytes: Disk budget applied to the service store *and*
            to each scale session's artifact store.
        session_jobs: ``--jobs`` for the underlying sweep executors.
    """

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        store: Optional[ArtifactStore] = None,
        workers: int = 2,
        spool_dir: Optional[Path] = None,
        max_disk_bytes: Optional[int] = None,
        session_jobs: int = 1,
        shard_size: int = 8,
        max_retries: int = 1,
        bus: Optional[JobEventBus] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        self.registry = registry if registry is not None else SessionRegistry()
        self.store = (
            store
            if store is not None
            else ArtifactStore(namespace="service", max_disk_bytes=max_disk_bytes)
        )
        self.bus = bus if bus is not None else JobEventBus()
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self.max_disk_bytes = max_disk_bytes
        self.session_jobs = session_jobs
        self.shard_size = shard_size
        self.max_retries = max_retries
        self.jobs: Dict[str, SweepJob] = {}
        self._finished: "OrderedDict[str, None]" = OrderedDict()
        self._inflight: Dict[str, SweepJob] = {}
        self._queues: Dict[str, Deque[SweepJob]] = {}
        self._rr: Deque[str] = deque()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._scale_locks: Dict[str, threading.Lock] = {}
        self._stats = {
            "submitted": 0,
            "memo_hits": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
        }
        self._job_seq = itertools.count(1)
        self._stop = False
        self._threads: List[threading.Thread] = []
        self._workers = workers
        if self.store.max_disk_bytes is None and max_disk_bytes is not None:
            self.store.max_disk_bytes = max_disk_bytes
        self.store.scan_disk()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "SweepScheduler":
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return self
            self._stop = False
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"sweep-worker-{index}",
                    daemon=True,
                )
                for index in range(self._workers)
            ]
        for thread in self._threads:
            thread.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop the workers; queued jobs fail cleanly as 'shutdown'."""
        with self._cond:
            self._stop = True
            drained: List[SweepJob] = []
            for queue in self._queues.values():
                drained.extend(queue)
                queue.clear()
            self._cond.notify_all()
        for job in drained:
            self._finish_job(job, error="scheduler shut down before execution")
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        for scale in list(self.registry.scales):
            if scale in self.registry:
                session = self.registry.get(scale)
                session.executor.shutdown()

    # -- submission ------------------------------------------------------------

    def submit(self, query: SweepQuery) -> SweepJob:
        """Queue (or instantly answer) one canonical query.

        Resolution order mirrors the store's tiers: a memoised answer in
        the service store completes the job synchronously with zero
        simulation; an in-flight job with the same digest absorbs this
        submission (coalescing); otherwise the job joins its tenant's
        queue and the round-robin picks it up.
        """
        digest = query.digest
        now = time.monotonic()
        with self._cond:
            self._stats["submitted"] += 1
            inflight = self._inflight.get(digest)
            if inflight is not None:
                inflight.coalesced += 1
                self._stats["coalesced"] += 1
                return inflight
        cached = _decode_memo(
            self.store.peek(
                "service_sweep",
                SERVICE_SWEEP_VERSION,
                persist=True,
                validate=lambda arrays: _decode_memo(arrays) is not None,
                digest=digest,
            )
        )
        job_id = f"{digest}-{next(self._job_seq)}"
        job = SweepJob(id=job_id, query=query, tenant=query.tenant)
        job.submitted_s = now
        if cached is not None:
            job.cache_hit = True
            job.result = dict(cached)
            job.result["cache"] = True
            with self._cond:
                self._stats["memo_hits"] += 1
                self._register(job)
            self.bus.publish(job.id, "memo_hit", digest=digest)
            self._finish_job(job)
            return job
        with self._cond:
            # Re-check under the lock: another thread may have started
            # (or even finished) the same digest while we peeked.
            inflight = self._inflight.get(digest)
            if inflight is not None:
                inflight.coalesced += 1
                self._stats["coalesced"] += 1
                return inflight
            if self._stop:
                raise ConfigurationError("scheduler is shut down")
            self._inflight[digest] = job
            self._register(job)
            queue = self._queues.get(query.tenant)
            if queue is None:
                queue = self._queues[query.tenant] = deque()
            if query.tenant not in self._rr:
                self._rr.append(query.tenant)
            queue.append(job)
            self._cond.notify()
        self.bus.publish(
            job.id,
            "queued",
            digest=digest,
            tenant=query.tenant,
            points=len(query.configs),
        )
        return job

    def job(self, job_id: str) -> Optional[SweepJob]:
        with self._lock:
            return self.jobs.get(job_id)

    def _register(self, job: SweepJob) -> None:
        """Track a job for GET /jobs/<id>; caller holds the lock."""
        self.jobs[job.id] = job

    # -- fair scheduling -------------------------------------------------------

    def _next_job(self) -> Optional[SweepJob]:
        """One round-robin turn; caller holds the lock.

        Tenants take strict turns: the head tenant serves at most one
        job and rotates to the back, so a burst from one tenant
        interleaves 1:1 with every other tenant's queue.
        """
        for _ in range(len(self._rr)):
            tenant = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues.get(tenant)
            if queue:
                return queue.popleft()
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                job = self._next_job()
                while job is None and not self._stop:
                    self._cond.wait(timeout=0.5)
                    job = self._next_job()
                if job is None and self._stop:
                    return
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 - job errors are payloads
                self._finish_job(job, error=f"{type(exc).__name__}: {exc}")

    # -- execution -------------------------------------------------------------

    def _scale_lock(self, scale: str) -> threading.Lock:
        with self._lock:
            lock = self._scale_locks.get(scale)
            if lock is None:
                lock = self._scale_locks[scale] = threading.Lock()
            return lock

    def _session_for(self, scale: str):
        """The measurement session answering one scale's queries.

        Built on first use through the registry; a configured disk
        budget is applied to the session's store so the trace/cube
        artifacts of many tenants' queries respect the same ceiling as
        the service store.
        """
        session = self.registry.get(scale, jobs=self.session_jobs)
        if self.max_disk_bytes is not None and session.store.max_disk_bytes is None:
            session.store.max_disk_bytes = self.max_disk_bytes
            session.store.scan_disk()
        return session

    def _job_config(self, job: SweepJob) -> Optional[JobConfig]:
        if self.spool_dir is None:
            return None
        run_dir = self.spool_dir / f"job-{job.query.digest}"
        resume = (run_dir / RUN_MARKER).exists()
        return JobConfig(
            run_dir=run_dir,
            resume=resume,
            max_retries=self.max_retries,
            shard_size=self.shard_size,
        )

    def _run_job(self, job: SweepJob) -> None:
        from repro.core.optimizer import DesignOptimizer

        job.state = "running"
        job.started_s = time.monotonic()
        self.bus.publish(job.id, "started", digest=job.query.digest)
        scale_lock = self._scale_lock(job.query.scale)
        with scale_lock:
            session = self._session_for(job.query.scale)
            tracer = SpanPublishingTracer(self.bus, job.id, names=PROGRESS_SPANS)
            previous_tracer = session.tracer
            previous_jobs = getattr(session, "job_config", None)
            session.attach_tracer(tracer)
            job_config = self._job_config(job)
            if job_config is not None:
                session.attach_jobs(job_config)
            try:
                optimizer = DesignOptimizer(session)
                # One scored pass serves every objective; selecting the
                # frontier here (rather than just sweeping) publishes the
                # optimizer.frontier span on the job's event stream and
                # never errors on an over-constrained budget — the
                # payload renders an empty feasible set instead.
                selection = optimizer.select(
                    list(job.query.configs),
                    objective="frontier",
                    max_area_cm2=job.query.max_area_cm2,
                    max_power_w=job.query.max_power_w,
                )
                points = list(selection.points)
            finally:
                session.attach_tracer(previous_tracer)
                session.attach_jobs(previous_jobs)
        result = result_payload(job.query, points)
        self.store.put(
            "service_sweep",
            SERVICE_SWEEP_VERSION,
            _encode_memo(result),
            persist=True,
            digest=job.query.digest,
        )
        result["cache"] = False
        job.result = result
        self._finish_job(job)

    def _finish_job(self, job: SweepJob, error: Optional[str] = None) -> None:
        job.finished_s = time.monotonic()
        with self._cond:
            self._inflight.pop(job.query.digest, None)
            if error is not None:
                job.state = "failed"
                job.error = error
                self._stats["failed"] += 1
            else:
                job.state = "done"
                self._stats["completed"] += 1
            self._finished[job.id] = None
            retired = []
            while len(self._finished) > _MAX_FINISHED_JOBS:
                old_id, _ = self._finished.popitem(last=False)
                self.jobs.pop(old_id, None)
                retired.append(old_id)
        kind = "failed" if error is not None else "done"
        self.bus.publish(
            job.id,
            kind,
            digest=job.query.digest,
            cache_hit=job.cache_hit,
            error=error,
        )
        self.bus.close(job.id)
        for old_id in retired:
            self.bus.forget(old_id)
        job.done.set()

    # -- reporting -------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """JSON-safe counters: scheduler, store, executor teardown."""
        with self._lock:
            queued = {
                tenant: len(queue)
                for tenant, queue in self._queues.items()
                if queue
            }
            payload: Dict[str, Any] = dict(self._stats)
            payload["inflight"] = len(self._inflight)
            payload["jobs_tracked"] = len(self.jobs)
        payload["queued"] = queued
        payload["store"] = self.store.stats().as_dict()
        sessions = {}
        for scale in list(self.registry.scales):
            if scale in self.registry:
                session = self.registry.get(scale)
                sessions[scale] = session.store.stats().as_dict()
        payload["sessions"] = sessions
        payload["executor_teardown_failures"] = teardown_failures()
        return payload
