"""A small blocking client for the sweep service (stdlib ``http.client``).

The client is what the benchmark and the tests speak; it is also the
reference for anyone integrating from outside Python — every method maps
one-to-one onto an HTTP route documented in :mod:`repro.service.http`.

``http.client`` de-chunks ``Transfer-Encoding: chunked`` bodies
transparently, so :meth:`ServiceClient.events` simply reads the NDJSON
stream line by line and yields events as they arrive.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.errors import ConfigurationError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ConfigurationError):
    """An HTTP-level failure from the sweep service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"service returned {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint; a new connection per call (the server is
    ``Connection: close``), so a client instance is cheap and reusable
    across threads as long as each thread makes its own calls."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8742, timeout: float = 600.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            encoded = None if body is None else json.dumps(body).encode()
            headers = {"Content-Type": "application/json"} if encoded else {}
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw.decode() or "null")
            except ValueError:
                payload = {"error": raw.decode(errors="replace")}
            if response.status >= 400:
                message = (
                    payload.get("error", "")
                    if isinstance(payload, dict)
                    else str(payload)
                )
                raise ServiceError(response.status, message)
            if not isinstance(payload, dict):
                raise ServiceError(response.status, f"non-object body: {payload!r}")
            payload["_status"] = response.status
            return payload
        finally:
            connection.close()

    # -- routes ----------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def submit(
        self,
        grid: Any,
        scale: str = "quick",
        objective: str = "min_tpi",
        tenant: str = "public",
        wait: bool = False,
        max_area_cm2: "float | None" = None,
        max_power_w: "float | None" = None,
    ) -> Dict[str, Any]:
        """POST one sweep query; with ``wait`` the result rides back inline.

        ``objective`` accepts any server-side spelling (``tpi`` /
        ``min_tpi`` / ``epi`` / ``edp`` / ``frontier`` / ``pareto``);
        budgets constrain the answer's eligible set server-side.
        """
        body: Dict[str, Any] = {
            "grid": grid,
            "scale": scale,
            "objective": objective,
            "tenant": tenant,
            "wait": wait,
        }
        if max_area_cm2 is not None:
            body["max_area_cm2"] = max_area_cm2
        if max_power_w is not None:
            body["max_power_w"] = max_power_w
        return self._request("POST", "/v1/sweeps", body=body)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str, after: int = 0) -> Iterator[Dict[str, Any]]:
        """Stream a job's progress events (blocks until the job closes)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events?after={after}")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read().decode(errors="replace")
                try:
                    message = json.loads(raw or "{}").get("error", raw)
                except ValueError:
                    message = raw
                raise ServiceError(response.status, message)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            connection.close()

    def wait_for_events(self, job_id: str, after: int = 0) -> List[Dict[str, Any]]:
        """Collect the whole event stream (convenience for tests/benches)."""
        return list(self.events(job_id, after=after))
