"""Design-space optimization as a service.

The paper's sweeps — "evaluate this grid of cache/pipeline designs and
report the TPI-optimal point" — packaged behind a small asyncio
HTTP/JSON API, so many clients (CI jobs, notebooks, other tenants) share
one warm simulator, one artifact store, and each other's finished
answers.

Layering, bottom up:

* :mod:`repro.service.protocol` — query parsing and canonicalization;
  the digest contract that makes memoisation sound.
* :mod:`repro.service.events` — per-job progress buffers and the tracer
  bridge that feeds them.
* :mod:`repro.service.scheduler` — fair round-robin queueing across
  tenants, in-flight coalescing, memoisation against the artifact
  store, execution through the durable-jobs layer.
* :mod:`repro.service.http` — the five HTTP routes, including the
  chunked NDJSON event stream.
* :mod:`repro.service.client` — the blocking stdlib client the bench
  and tests use.

Run a server with ``python -m repro.experiments.runner serve`` (or
``python -m repro.service``).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.events import JobEventBus, SpanPublishingTracer
from repro.service.http import SweepService
from repro.service.protocol import (
    OBJECTIVES,
    SERVICE_SWEEP_VERSION,
    SweepQuery,
    parse_query,
)
from repro.service.scheduler import SweepJob, SweepScheduler

__all__ = [
    "OBJECTIVES",
    "SERVICE_SWEEP_VERSION",
    "JobEventBus",
    "ServiceClient",
    "ServiceError",
    "SpanPublishingTracer",
    "SweepJob",
    "SweepQuery",
    "SweepScheduler",
    "SweepService",
    "parse_query",
]
