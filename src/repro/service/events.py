"""Per-job progress events: the feed behind ``GET /jobs/<id>/events``.

The scheduler publishes lifecycle events (queued, started, finished) and
a :class:`SpanPublishingTracer` mirrors the observability layer's span
exits (shard completions, miss-cube builds, trace synthesis) into the
same per-job buffers.  HTTP handlers consume them through
:meth:`JobEventBus.stream`, a blocking generator the async server drives
from a worker thread.

Buffers are bounded: a job that emits more events than a client consumes
drops its *oldest* events (counted, and visible as a gap in ``seq``), so
a slow or absent subscriber can never grow the service's memory without
limit.  Events are plain JSON-safe dicts from birth — everything that
enters the bus goes through :func:`repro.utils.jsonio.jsonable`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.tracer import Span, Tracer
from repro.utils.jsonio import jsonable

__all__ = ["JobEventBus", "SpanPublishingTracer"]


class JobEventBus:
    """Thread-safe, bounded, per-job event buffers with blocking streams."""

    def __init__(self, max_buffered: int = 2048) -> None:
        if max_buffered < 1:
            raise ValueError("max_buffered must be at least 1")
        self.max_buffered = max_buffered
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._seq: Dict[str, int] = {}
        self._dropped: Dict[str, int] = {}
        self._closed: Dict[str, bool] = {}

    # -- producing -------------------------------------------------------------

    def publish(self, job_id: str, kind: str, **data: Any) -> Dict[str, Any]:
        """Append one event to a job's buffer and wake every subscriber."""
        with self._cond:
            seq = self._seq.get(job_id, 0) + 1
            self._seq[job_id] = seq
            event = {"seq": seq, "kind": kind, **jsonable(data)}
            buffer = self._events.setdefault(job_id, [])
            buffer.append(event)
            if len(buffer) > self.max_buffered:
                dropped = len(buffer) - self.max_buffered
                del buffer[:dropped]
                self._dropped[job_id] = self._dropped.get(job_id, 0) + dropped
            self._cond.notify_all()
            return event

    def close(self, job_id: str) -> None:
        """Mark a job's stream finished; streams drain and then stop."""
        with self._cond:
            self._closed[job_id] = True
            self._cond.notify_all()

    def forget(self, job_id: str) -> None:
        """Drop a job's buffer entirely (retired jobs).

        The closed flag is kept (a single bool) so a subscriber that
        wakes after the buffer vanishes still sees a finished stream
        instead of waiting for events that can never come.
        """
        with self._cond:
            self._events.pop(job_id, None)
            self._seq.pop(job_id, None)
            self._dropped.pop(job_id, None)
            self._closed[job_id] = True
            self._cond.notify_all()

    # -- consuming -------------------------------------------------------------

    def snapshot(self, job_id: str) -> List[Dict[str, Any]]:
        """Every buffered event for a job (oldest first)."""
        with self._lock:
            return list(self._events.get(job_id, ()))

    def dropped(self, job_id: str) -> int:
        """How many of a job's oldest events were dropped by the bound."""
        with self._lock:
            return self._dropped.get(job_id, 0)

    def closed(self, job_id: str) -> bool:
        with self._lock:
            return self._closed.get(job_id, False)

    def stream(
        self,
        job_id: str,
        after: int = 0,
        deadline_s: Optional[float] = None,
        poll_s: float = 0.5,
    ) -> Iterator[Dict[str, Any]]:
        """Yield a job's events with ``seq > after`` until it closes.

        Blocking — the HTTP layer drives this from a thread.  Returns
        (rather than raising) at ``deadline_s`` so an abandoned stream
        can never pin a thread forever.
        """
        started = time.monotonic()
        cursor = after
        while True:
            with self._cond:
                pending = [
                    event
                    for event in self._events.get(job_id, ())
                    if event["seq"] > cursor
                ]
                if not pending:
                    if self._closed.get(job_id, False):
                        return
                    remaining = poll_s
                    if deadline_s is not None:
                        remaining = min(
                            remaining, deadline_s - (time.monotonic() - started)
                        )
                        if remaining <= 0:
                            return
                    self._cond.wait(timeout=remaining)
            for event in pending:
                cursor = event["seq"]
                yield event
            if deadline_s is not None and time.monotonic() - started >= deadline_s:
                return


class SpanPublishingTracer(Tracer):
    """A :class:`~repro.obs.tracer.Tracer` that mirrors span exits to a bus.

    The tracer is still a full recording tracer (span forest, counters),
    so attaching it to a session changes nothing about profiling; it
    additionally publishes every *completed* span — name, wall time,
    attributes, counters — as a ``span`` event on the owning job's
    stream.  ``names`` restricts publication to interesting spans (shard
    completions, cube builds) so high-frequency inner spans cannot flood
    the buffer.
    """

    def __init__(
        self,
        bus: JobEventBus,
        job_id: str,
        names: Optional[Any] = None,
    ) -> None:
        super().__init__()
        self.bus = bus
        self.job_id = job_id
        self.names = None if names is None else frozenset(names)

    def _pop(self, span: Span) -> None:
        was_open = any(entry is span for entry in self._stack)
        super()._pop(span)
        if not was_open:
            # A mismatched or double exit — the base class treats it as
            # a no-op, and publishing it would fabricate progress.
            return
        if self.names is not None and span.name not in self.names:
            return
        self.bus.publish(
            self.job_id,
            "span",
            name=span.name,
            wall_s=span.wall_s,
            attrs=dict(span.attrs),
            counters=dict(span.counters),
        )
