"""CLI entry point: ``python -m repro.service`` (or ``runner serve``)."""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import List, Optional

from repro.engine.session import SessionRegistry
from repro.service.http import SweepService
from repro.service.scheduler import SweepScheduler

__all__ = ["serve_main"]


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve design-space sweep queries over HTTP/JSON.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8742,
        help="bind port; 0 picks a free port (default: 8742)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="scheduler worker threads (default: 2)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per measurement session (default: 1)",
    )
    parser.add_argument(
        "--spool-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="journal every sweep under DIR so killed jobs resume on "
        "resubmission (default: no durability layer)",
    )
    parser.add_argument(
        "--max-disk-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU byte budget for the service and session artifact stores "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=8,
        metavar="N",
        help="design points per journaled shard (default: 8)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be at least 1, got {args.workers}")
    if args.jobs < 1:
        parser.error(f"--jobs must be at least 1, got {args.jobs}")
    if args.max_disk_bytes is not None and args.max_disk_bytes < 1:
        parser.error(
            f"--max-disk-bytes must be at least 1, got {args.max_disk_bytes}"
        )
    scheduler = SweepScheduler(
        registry=SessionRegistry(),
        workers=args.workers,
        spool_dir=args.spool_dir,
        max_disk_bytes=args.max_disk_bytes,
        session_jobs=args.jobs,
        shard_size=args.shard_size,
    )
    service = SweepService(scheduler, host=args.host, port=args.port)

    async def run() -> None:
        await service.start()
        print(
            f"serving sweeps on http://{service.host}:{service.port} "
            f"(workers={args.workers}, jobs={args.jobs})",
            flush=True,
        )
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
