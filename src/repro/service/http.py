"""The asyncio HTTP/JSON front end of the sweep service.

Hand-rolled HTTP/1.1 on :func:`asyncio.start_server` — the environment
is stdlib-only, so there is no web framework here, just a small parser
for the five routes the service speaks:

========  ==========================  =========================================
method    path                        meaning
========  ==========================  =========================================
GET       ``/healthz``                liveness probe
GET       ``/v1/stats``               scheduler + store + session counters
POST      ``/v1/sweeps``              submit a query (``"wait": true`` blocks)
GET       ``/v1/jobs/<id>``           one job's state (and result when done)
GET       ``/v1/jobs/<id>/events``    chunked NDJSON progress stream
========  ==========================  =========================================

Every response is JSON.  The events route streams with
``Transfer-Encoding: chunked``, one event per line, flushing each event
as it is published — a client watching a running sweep sees shard
completions and cube builds as they happen.  Event consumption is
async-polled off the bus's snapshots (cheap, lock-guarded list copies)
rather than parking a thread per subscriber, so a thousand idle
streams cost no threads.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import unquote, urlsplit

from repro.errors import ConfigurationError
from repro.service.protocol import parse_query
from repro.service.scheduler import SweepScheduler
from repro.utils.jsonio import jsonable

__all__ = ["SweepService"]

#: Request body ceiling — a full 4096-point grid in the verbose list
#: form fits comfortably; anything bigger is not a sweep query.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Request-line + headers ceiling.
_MAX_HEAD_BYTES = 32 * 1024

#: How often an events stream re-checks the bus for new events.
_EVENT_POLL_S = 0.05

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """A request failure that maps straight onto a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class SweepService:
    """The HTTP server wrapping one :class:`SweepScheduler`.

    Args:
        scheduler: The scheduler answering queries (started on
            :meth:`start` if it is not running yet).
        host: Bind address (default loopback — the service is an
            internal API, not an internet-facing one).
        port: Bind port; ``0`` picks a free port, readable from
            :attr:`port` after :meth:`start`.
        stream_deadline_s: Hard ceiling on one events stream's lifetime,
            so an abandoned subscriber can never hold a socket forever.
        wait_timeout_s: Ceiling on a ``"wait": true`` submission —
            longer sweeps return 408 with the job id so the client can
            poll or stream instead.
    """

    def __init__(
        self,
        scheduler: SweepScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        stream_deadline_s: float = 600.0,
        wait_timeout_s: float = 600.0,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.stream_deadline_s = stream_deadline_s
        self.wait_timeout_s = wait_timeout_s
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "SweepService":
        """Bind the listening socket and start scheduler workers."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.scheduler.close()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query_string, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            try:
                await self._dispatch(writer, method, path, query_string, body)
            except _HttpError as exc:
                await self._send_json(writer, exc.status, {"error": exc.message})
            except ConfigurationError as exc:
                await self._send_json(writer, 400, {"error": str(exc)})
            except ConnectionError:
                pass
            except Exception as exc:  # noqa: BLE001 - the server must survive
                await self._send_json(
                    writer,
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, str, bytes]:
        """Parse one request; returns (method, path, query-string, body)."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request head too large") from None
        if len(head) > _MAX_HEAD_BYTES:
            raise _HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        split = urlsplit(target)
        path = unquote(split.path)
        body = b""
        length_header = headers.get("content-length", "0")
        try:
            length = int(length_header)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length: {length_header!r}") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        if length:
            body = await reader.readexactly(length)
        return method, path, split.query, body

    # -- routing ---------------------------------------------------------------

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query_string: str,
        body: bytes,
    ) -> None:
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            await self._send_json(writer, 200, {"ok": True})
            return
        if path == "/v1/stats":
            if method != "GET":
                raise _HttpError(405, "stats is GET-only")
            await self._send_json(writer, 200, jsonable(self.scheduler.stats()))
            return
        if path == "/v1/sweeps":
            if method != "POST":
                raise _HttpError(405, "sweeps is POST-only")
            await self._handle_submit(writer, body)
            return
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise _HttpError(405, "jobs is GET-only")
            remainder = path[len("/v1/jobs/") :]
            if remainder.endswith("/events"):
                job_id = remainder[: -len("/events")].rstrip("/")
                await self._handle_events(writer, job_id, query_string)
            else:
                await self._handle_job(writer, remainder)
            return
        raise _HttpError(404, f"no route for {path!r}")

    async def _handle_submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        wait = payload.get("wait", False)
        if not isinstance(wait, bool):
            raise _HttpError(400, "'wait' must be a boolean")
        query = parse_query(payload, scales=self.scheduler.registry.scales)
        job = self.scheduler.submit(query)
        if wait:
            done = await self._await_job(job, self.wait_timeout_s)
            if not done:
                raise _HttpError(
                    408,
                    f"job {job.id} still running after {self.wait_timeout_s}s; "
                    f"poll /v1/jobs/{job.id} or stream its events",
                )
            await self._send_json(writer, 200, job.payload())
            return
        status = 200 if job.done.is_set() else 202
        await self._send_json(
            writer, status, job.payload(include_result=job.done.is_set())
        )

    async def _await_job(self, job: Any, timeout_s: float) -> bool:
        """Async-wait on a threading.Event without parking a thread."""
        deadline = asyncio.get_running_loop().time() + timeout_s
        poll_s = 0.01
        while not job.done.is_set():
            if asyncio.get_running_loop().time() >= deadline:
                return False
            await asyncio.sleep(poll_s)
            poll_s = min(poll_s * 2, 0.25)
        return True

    async def _handle_job(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        job = self.scheduler.job(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        await self._send_json(writer, 200, job.payload())

    async def _handle_events(
        self, writer: asyncio.StreamWriter, job_id: str, query_string: str
    ) -> None:
        """Stream a job's events as chunked NDJSON until it closes."""
        job = self.scheduler.job(job_id)
        bus = self.scheduler.bus
        if job is None and not bus.closed(job_id) and not bus.snapshot(job_id):
            raise _HttpError(404, f"unknown job {job_id!r}")
        after = 0
        for pair in query_string.split("&"):
            name, _, value = pair.partition("=")
            if name == "after":
                try:
                    after = int(value)
                except ValueError:
                    raise _HttpError(400, f"bad 'after' cursor {value!r}") from None
        await self._send_head(
            writer,
            200,
            {
                "Content-Type": "application/x-ndjson",
                "Transfer-Encoding": "chunked",
            },
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.stream_deadline_s
        cursor = after
        dropped = bus.dropped(job_id)
        if dropped:
            await self._send_chunk(
                writer, {"kind": "dropped", "count": dropped}
            )
        while True:
            pending = [
                event
                for event in bus.snapshot(job_id)
                if event["seq"] > cursor
            ]
            for event in pending:
                cursor = event["seq"]
                await self._send_chunk(writer, event)
            if not pending and bus.closed(job_id):
                break
            if loop.time() >= deadline:
                await self._send_chunk(
                    writer, {"kind": "deadline", "cursor": cursor}
                )
                break
            await asyncio.sleep(_EVENT_POLL_S)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- response plumbing -----------------------------------------------------

    async def _send_head(
        self, writer: asyncio.StreamWriter, status: int, headers: Dict[str, str]
    ) -> None:
        text = _STATUS_TEXT.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {text}", "Connection: close"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = (
            json.dumps(jsonable(payload), sort_keys=True, allow_nan=False) + "\n"
        ).encode()
        await self._send_head(
            writer,
            status,
            {
                "Content-Type": "application/json",
                "Content-Length": str(len(body)),
            },
        )
        writer.write(body)
        await writer.drain()

    async def _send_chunk(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        data = (
            json.dumps(jsonable(payload), sort_keys=True, allow_nan=False) + "\n"
        ).encode()
        writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        await writer.drain()
