"""Replacement policies for the general set-associative cache."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["ReplacementPolicy", "LRU", "FIFO", "RandomReplacement"]


class ReplacementPolicy(ABC):
    """Chooses a victim way within one set.

    A policy instance is created per cache and told the geometry once via
    :meth:`attach`; it then tracks whatever per-set state it needs.
    """

    def attach(self, num_sets: int, associativity: int) -> None:
        self.num_sets = num_sets
        self.associativity = associativity

    @abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Called on every hit (and on the fill completing a miss)."""

    @abstractmethod
    def victim(self, set_index: int) -> int:
        """Way to evict when the set is full."""


class LRU(ReplacementPolicy):
    """Least-recently-used — the classic cache-study default."""

    def attach(self, num_sets: int, associativity: int) -> None:
        super().attach(num_sets, associativity)
        # recency[s] lists ways from least- to most-recently used.
        self._recency: List[List[int]] = [
            list(range(associativity)) for _ in range(num_sets)
        ]

    def on_access(self, set_index: int, way: int) -> None:
        order = self._recency[set_index]
        order.remove(way)
        order.append(way)

    def victim(self, set_index: int) -> int:
        return self._recency[set_index][0]


class FIFO(ReplacementPolicy):
    """First-in-first-out: eviction order ignores hits."""

    def attach(self, num_sets: int, associativity: int) -> None:
        super().attach(num_sets, associativity)
        self._next: List[int] = [0] * num_sets

    def on_access(self, set_index: int, way: int) -> None:
        pass  # hits do not affect FIFO order

    def victim(self, set_index: int) -> int:
        way = self._next[set_index]
        self._next[set_index] = (way + 1) % self.associativity
        return way


class RandomReplacement(ReplacementPolicy):
    """Uniform random victim; cheap in hardware, noisy in software."""

    def __init__(self, seed: Optional[int] = 1234) -> None:
        self._rng = make_rng(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return int(self._rng.integers(0, self.associativity))
