"""Set-associative LRU miss counting over block streams.

The paper's Section 6 closes with a conjecture: once the cache is
pipelined, ``t_CPU`` no longer tracks the access time, so *associativity*
— which lengthens the access but cuts conflict misses — should pay off
more.  Testing that needs a set-associative simulator over the same block
streams the direct-mapped fast path consumes.

Unlike the direct-mapped case there is no simple vectorized closed form,
so this is an optimized dict-based LRU: one insertion-ordered dict per set
(Python dicts preserve insertion order; ``pop`` + re-insert is an O(1)
move-to-back).  Throughput is roughly a million references per second —
fine for the extension studies, which run at reduced stream lengths.
Exactness against the reference :class:`~repro.cache.cache.Cache` is
enforced by property-based tests.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.units import is_power_of_two

__all__ = ["set_associative_misses", "associative_miss_sweep"]


def set_associative_misses(
    block_sequence: np.ndarray, num_sets: int, associativity: int
) -> int:
    """Exact LRU miss count for a ``num_sets`` x ``associativity`` cache.

    Args:
        block_sequence: Cache-block indices in reference order.
        num_sets: Sets (power of two).
        associativity: Ways per set (>= 1).

    ``associativity == 1`` delegates to the vectorized direct-mapped path.
    """
    if not is_power_of_two(num_sets):
        raise ConfigurationError(f"set count must be a power of two: {num_sets}")
    if associativity < 1:
        raise ConfigurationError("associativity must be >= 1")
    if associativity == 1:
        from repro.cache.fastsim import direct_mapped_misses

        return direct_mapped_misses(block_sequence, num_sets)

    blocks = np.asarray(block_sequence, dtype=np.int64)
    mask = num_sets - 1
    sets: list = [None] * num_sets  # lazily created per-set LRU dicts
    misses = 0
    for block in blocks.tolist():
        index = block & mask
        lru = sets[index]
        if lru is None:
            lru = {}
            sets[index] = lru
        if block in lru:
            # Move to most-recently-used position.
            del lru[block]
            lru[block] = True
        else:
            misses += 1
            if len(lru) >= associativity:
                # Evict the least-recently-used (first-inserted) block.
                del lru[next(iter(lru))]
            lru[block] = True
    return misses


def associative_miss_sweep(
    block_sequence: np.ndarray,
    size_blocks: int,
    associativities: Sequence[int],
) -> Dict[int, int]:
    """Miss counts at fixed capacity across associativities.

    ``size_blocks`` is the total cache capacity in blocks; each
    associativity ``a`` is simulated with ``size_blocks / a`` sets, so the
    sweep isolates the conflict-miss effect the paper's Section 6 cares
    about.
    """
    if not is_power_of_two(size_blocks):
        raise ConfigurationError(f"capacity must be a power of two: {size_blocks}")
    results = {}
    for associativity in associativities:
        if size_blocks % associativity != 0:
            raise ConfigurationError(
                f"associativity {associativity} does not divide {size_blocks} blocks"
            )
        num_sets = size_blocks // associativity
        if not is_power_of_two(num_sets):
            raise ConfigurationError(
                f"{size_blocks} blocks / {associativity} ways is not a "
                "power-of-two set count"
            )
        results[associativity] = set_associative_misses(
            block_sequence, num_sets, associativity
        )
    return results
