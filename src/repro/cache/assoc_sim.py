"""Set-associative LRU miss counting over block streams.

The paper's Section 6 closes with a conjecture: once the cache is
pipelined, ``t_CPU`` no longer tracks the access time, so *associativity*
— which lengthens the access but cuts conflict misses — should pay off
more.  Testing that needs a set-associative simulator over the same block
streams the direct-mapped fast path consumes.

:func:`set_associative_misses` is an optimized dict-based LRU: one
insertion-ordered dict per set (Python dicts preserve insertion order;
``pop`` + re-insert is an O(1) move-to-back).  Throughput is roughly a
million references per second — it survives as the *oracle* the
property-based tests pit against the production path.  That production
path is :mod:`repro.cache.stackdist`: one vectorized stack-distance pass
answers the whole (set count x ways) plane at once, and
:func:`associative_miss_sweep` is now a thin view over it.  Exactness of
both against the reference :class:`~repro.cache.cache.Cache` is enforced
by property-based tests.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.units import is_power_of_two

__all__ = ["set_associative_misses", "associative_miss_sweep"]

#: References materialized per ``tolist`` batch.  Chunking keeps the
#: Python-object working set bounded (a full ``tolist`` of a
#: multimillion-reference stream allocates one ``int`` object per
#: element up front) without changing the per-reference loop.
_CHUNK_REFERENCES = 1 << 16


def _fully_associative_misses(blocks: np.ndarray, associativity: int) -> int:
    """LRU misses of a single ``associativity``-entry set."""
    if associativity >= len(blocks):
        # The cache can never fill, let alone evict: every miss is a
        # cold miss, so the miss count is the distinct-block count.
        return len(np.unique(blocks))
    lru: Dict[int, bool] = {}
    misses = 0
    for start in range(0, len(blocks), _CHUNK_REFERENCES):
        for block in blocks[start : start + _CHUNK_REFERENCES].tolist():
            if block in lru:
                del lru[block]
                lru[block] = True
            else:
                misses += 1
                if len(lru) >= associativity:
                    del lru[next(iter(lru))]
                lru[block] = True
    return misses


def set_associative_misses(
    block_sequence: np.ndarray, num_sets: int, associativity: int
) -> int:
    """Exact LRU miss count for a ``num_sets`` x ``associativity`` cache.

    Args:
        block_sequence: Cache-block indices in reference order.
        num_sets: Sets (power of two).
        associativity: Ways per set (>= 1).

    ``associativity == 1`` delegates to the vectorized direct-mapped
    path; ``num_sets == 1`` to a single-dict fully-associative loop
    with no set indexing.
    """
    if not is_power_of_two(num_sets):
        raise ConfigurationError(f"set count must be a power of two: {num_sets}")
    if associativity < 1:
        raise ConfigurationError("associativity must be >= 1")
    if associativity == 1:
        from repro.cache.fastsim import direct_mapped_misses

        return direct_mapped_misses(block_sequence, num_sets)

    blocks = np.asarray(block_sequence, dtype=np.int64)
    if num_sets == 1:
        return _fully_associative_misses(blocks, associativity)
    if associativity >= len(blocks):
        # No set can ever evict (a set holds at most the stream's
        # distinct blocks, each block maps to exactly one set), so the
        # cache is effectively fully associative and never full.
        return len(np.unique(blocks))
    mask = num_sets - 1
    sets: list = [None] * num_sets  # lazily created per-set LRU dicts
    misses = 0
    for start in range(0, len(blocks), _CHUNK_REFERENCES):
        for block in blocks[start : start + _CHUNK_REFERENCES].tolist():
            index = block & mask
            lru = sets[index]
            if lru is None:
                lru = {}
                sets[index] = lru
            if block in lru:
                # Move to most-recently-used position.
                del lru[block]
                lru[block] = True
            else:
                misses += 1
                if len(lru) >= associativity:
                    # Evict the least-recently-used (first-inserted) block.
                    del lru[next(iter(lru))]
                lru[block] = True
    return misses


def associative_miss_sweep(
    block_sequence: np.ndarray,
    size_blocks: int,
    associativities: Sequence[int],
) -> Dict[int, int]:
    """Miss counts at fixed capacity across associativities.

    ``size_blocks`` is the total cache capacity in blocks; each
    associativity ``a`` is simulated with ``size_blocks / a`` sets, so the
    sweep isolates the conflict-miss effect the paper's Section 6 cares
    about.  A thin view over :func:`~repro.cache.stackdist.
    capacity_associativity_misses`: one stack-distance pass covers every
    requested associativity (bit-identical to one
    :func:`set_associative_misses` call per point).
    """
    from repro.cache.stackdist import capacity_associativity_misses

    if not is_power_of_two(size_blocks):
        raise ConfigurationError(f"capacity must be a power of two: {size_blocks}")
    plane = capacity_associativity_misses(
        block_sequence, [size_blocks], associativities
    )
    return {
        associativity: plane[(size_blocks, int(associativity))]
        for associativity in associativities
    }
