"""Set-partitioned, out-of-core, parallel miss-cube construction.

The single-pass engine (:mod:`repro.cache.misscube`) answers the whole
``(block size × sets × ways)`` cube exactly, but it is one serial pass
holding one process's worth of derived arrays — at the paper's
2.4G-instruction scale that is hours of one core and tens of gigabytes
of rank-count state.  This module splits the same computation across
*set partitions*:

**Why partitioning is exact.**  Power-of-two set indices nest: the set
index of a ``2^k``-set cache is the low ``k`` bits of the block index.
Partition the reference stream by the low ``p`` bits of the block index
(the *coarsest* partitioned set index) and every geometry whose set
index contains those ``p`` bits decomposes exactly: each cache set lives
entirely inside one partition, the partition substream preserves each
set's reference subsequence verbatim, and LRU stack distances are
per-set quantities.  Each partition's miss counts can therefore be
computed independently — by the unmodified serial engine — and summed
(integer counts; addition is exact and order-independent, so the merged
cube is *bit-identical* to the one-shot serial cube).

**The block-size axis.**  For per-block-size streams the closure
condition is simply ``S >= partitions``.  When every block size is a
shift view of one shared byte-address stream, the partition key is the
coarsest covered block size's index bits — address bits
``[log2(Bmax*WB), log2(Bmax*WB) + p)`` — and a geometry ``(B, S)``
decomposes iff that window sits inside its set-index window:
``log2(S) >= p + log2(Bmax / B)``.  The paper grid (4/8/16-word blocks,
1–32 KW capacities) satisfies this for ``p = 3`` at every geometry.
Set counts *below* the closure threshold (the production cubes cover
every level down to one set) are inherently global — a single LRU stack
over the whole stream cannot be split — so they are computed by the
serial engine in the parent, over exactly the levels the partitions
cannot answer (the *coarse residue*).

**Out-of-core.**  :func:`partitioned_miss_cube_from_addresses` consumes
its address stream in O(chunk) memory — an ndarray (typically a
memory-mapped trace bundle from :meth:`~repro.engine.store.
ArtifactStore.get_or_stream`) or any iterable of address chunks —
scattering references into per-partition spill segments via
:class:`~repro.trace.io.StreamingBundleWriter`.  The finalized spill is
memory-mapped back, so reduce workers (parallel or serial) read
partition buffers through the page cache: nothing larger than a file
locator is ever pickled, and every process mapping a partition shares
one set of physical pages.  The in-memory form
(:func:`partitioned_miss_cube`) instead exports partition buffers
through the :class:`~repro.engine.shm.SharedBundleRegistry`, so forked
sweep workers attach named shared-memory segments rather than receiving
pickled arrays.

**Failure containment.**  Reduces are dispatched through a
:class:`~repro.engine.executor.SweepExecutor` in jobs-sized waves (each
wave closes a ``cube.progress`` span, so long builds stay visible on
service event streams).  A worker pool that dies (``BrokenProcessPool``
twice without progress) or a worker that cannot see the shared buffers
(spawn start method, stale pool) degrades to the parent recomputing the
affected partitions serially — same substreams, same engine, identical
counts.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import uuid
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache.fastsim import addresses_to_blocks, direct_mapped_miss_sweep
from repro.cache.geometry import checked_block_words, checked_levels
from repro.cache.misscube import (
    MissCube,
    SetCounts,
    ShiftedStreams,
    _normalized_set_counts,
    miss_cube,
)
from repro.engine.executor import SweepExecutor
from repro.engine.shm import SHARED_BUNDLES
from repro.errors import ConfigurationError
from repro.obs.tracer import NULL_TRACER
from repro.trace.io import StreamingBundleWriter, delete_entry, load_arrays
from repro.utils.units import WORD_BYTES, is_power_of_two, log2_int

__all__ = [
    "DEFAULT_PARTITIONS",
    "DEFAULT_CHUNK_REFS",
    "partitioned_miss_cube",
    "partitioned_miss_cube_from_addresses",
]

#: Default set-partition count.  Eight partitions (three index bits)
#: keep the whole paper grid fine-decomposable when the shared address
#: stream is partitioned at the 16-word block size, and bound each
#: reduce worker's memory to roughly an eighth of the serial pass.
DEFAULT_PARTITIONS = 8

#: Default partition-pass chunk length (references).  4M int64
#: addresses is 32 MB — large enough to amortize the per-chunk scatter,
#: small enough that the pass stays O(chunk) in any reasonable budget.
DEFAULT_CHUNK_REFS = 1 << 22

#: Shared-memory group prefix for in-memory partition buffers.
_SHM_PREFIX = "cubepart"

#: Parent-side partition stash for in-process reduces: serial executors
#: (and forked workers, via copy-on-write) resolve partition buffers
#: here when the shared-memory registry misses.  Keyed by
#: ``(token, partition)``; entries never outlive their build.
_LOCAL_PARTS: Dict[Tuple[str, int], Mapping[int, np.ndarray]] = {}

#: Test-only fault hook: ``(parent_pid, {partition indices})``.  A
#: *forked worker* (pid differs from the recorded parent) asked to
#: reduce one of the listed partitions hard-exits, simulating an OOM
#: kill mid-reduce; the parent itself never faults, so the serial
#: fallback path stays exact.  See tests/cache/test_cubepart.py.
_FAULT_PARTS: Optional[Tuple[int, frozenset]] = None


def _maybe_fault(partition: int) -> None:
    if _FAULT_PARTS is not None:
        pid, parts = _FAULT_PARTS
        if os.getpid() != pid and partition in parts:
            os._exit(1)


# -- geometry bookkeeping ------------------------------------------------------


def _checked_partitions(partitions: int) -> int:
    partitions = int(partitions)
    if partitions < 1 or not is_power_of_two(partitions):
        raise ConfigurationError(
            f"cube partitions must be a positive power of two, got {partitions}"
        )
    return partitions


def _split_fine_coarse(
    per_block: Mapping[int, Sequence[int]],
    partition_bits: int,
    extra_bits: Mapping[int, int],
) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
    """Split each block size's set counts by partition closure.

    A set count is *fine* when its set-index bit window contains every
    partition bit (``log2(S) >= p + extra_bits[B]``, trivially true for
    ``p == 0``): those geometries decompose exactly across partitions.
    Everything below the threshold is *coarse residue* for the serial
    in-parent pass.
    """
    fine: Dict[int, List[int]] = {}
    coarse: Dict[int, List[int]] = {}
    for B, counts in per_block.items():
        levels = checked_levels(counts)
        threshold = partition_bits + extra_bits.get(B, 0)
        fine[B] = [
            S for S, level in levels.items()
            if partition_bits == 0 or level >= threshold
        ]
        coarse[B] = [
            S for S, level in levels.items()
            if not (partition_bits == 0 or level >= threshold)
        ]
    return fine, coarse


def _partition_hits(
    streams: Mapping[int, np.ndarray],
    set_counts: Mapping[int, Sequence[int]],
    max_ways: int,
    cross_check: bool,
) -> Dict[int, Dict[int, np.ndarray]]:
    """One partition's cube: the unmodified serial engine on its substreams.

    With ``cross_check``, every block size's ``A = 1`` base is verified
    against the independent adjacent-tag sweep
    (:func:`~repro.cache.fastsim.direct_mapped_miss_sweep`) on the same
    substream — the per-partition equivalent of the fatal whole-cube
    check the measurement layer runs on serial builds.
    """
    covered = {B: counts for B, counts in set_counts.items() if counts}
    cube = miss_cube({B: streams[B] for B in covered}, covered, max_ways)
    if cross_check:
        for B in cube.block_words:
            wanted = cube.set_counts(B)
            if not wanted:
                continue
            axis = direct_mapped_miss_sweep(streams[B], wanted)
            for num_sets, expected in axis.items():
                got = cube.misses(B, num_sets, 1)
                if got != expected:
                    raise RuntimeError(
                        f"partitioned cube A=1 base disagrees with the "
                        f"direct-mapped sweep at B={B}, {num_sets} sets "
                        f"({got} != {expected})"
                    )
    return {B: dict(cube.hits[B]) for B in cube.block_words}


# -- reduce workers (module-level for pickling) --------------------------------


def _reduce_shared(item: Tuple[Any, ...]) -> Optional[Dict[int, Dict[int, np.ndarray]]]:
    """Worker task: reduce one in-memory partition.

    Buffers resolve through the shared-memory registry first (forked
    workers attach the parent's segments zero-copy), then the parent's
    local stash (serial executors; copy-on-write forks).  A miss — a
    spawned worker, or a pool forked before the export — returns None
    and the parent recomputes the partition itself.
    """
    token, group, partition, fine_counts, max_ways, cross_check = item
    _maybe_fault(partition)
    arrays = SHARED_BUNDLES.lookup(group, f"p{partition:03d}")
    if arrays is not None:
        streams: Optional[Mapping[int, np.ndarray]] = {
            int(name[1:]): array for name, array in arrays.items()
        }
    else:
        streams = _LOCAL_PARTS.get((token, partition))
    if streams is None:
        return None
    return _partition_hits(streams, fine_counts, max_ways, cross_check)


def _reduce_spilled(item: Tuple[Any, ...]) -> Dict[int, Dict[int, np.ndarray]]:
    """Worker task: reduce one spilled partition from the mmap'd bundle.

    Only the spill locator crosses the process boundary; the partition's
    addresses are memory-mapped from the finalized spill segment, so
    every worker (and the parent) shares one set of page-cache pages.
    """
    digest, spill_dir, partition, blocks, fine_counts, max_ways, cross_check = item
    _maybe_fault(partition)
    arrays = load_arrays(digest, cache_dir=Path(spill_dir))
    if arrays is None:
        raise ConfigurationError(
            f"cube spill bundle {digest} vanished mid-reduce"
        )
    addresses = arrays[f"p{partition:03d}"]
    streams = ShiftedStreams(addresses, blocks)
    return _partition_hits(streams, fine_counts, max_ways, cross_check)


# -- wave-dispatched reduce with serial fallback -------------------------------


def _reduce_partitions(
    items: Sequence[Any],
    reducer,
    fallback,
    executor: SweepExecutor,
    tracer,
) -> List[Dict[int, Dict[int, np.ndarray]]]:
    """Map partition tasks in jobs-sized waves, degrading to the parent.

    Waves keep long reduces observable (one ``cube.progress`` heartbeat
    per wave) and bound how much work an executor failure can lose.  A
    pool that breaks twice without progress (the executor's
    ``ConfigurationError``) — or a worker that cannot see its buffers —
    drops to an in-parent serial recompute of the affected partitions,
    which produces identical counts by construction.
    """
    results: List[Optional[Dict[int, Dict[int, np.ndarray]]]] = [None] * len(items)
    wave = max(1, executor.jobs)
    with tracer.span(
        "cube.reduce",
        partitions=len(items),
        backend=executor.backend,
        jobs=executor.jobs,
    ) as span:
        reduced = 0
        for start in range(0, len(items), wave):
            batch = list(items[start : start + wave])
            try:
                mapped = executor.map(reducer, batch)
            except ConfigurationError:
                # The worker pool is unrecoverable; finish serially.
                remaining = len(items) - start
                span.count("fallback_partitions", remaining)
                with tracer.span(
                    "cube.serial_fallback", partitions=remaining
                ):
                    for index in range(start, len(items)):
                        results[index] = fallback(index)
                        reduced += 1
                with tracer.span("cube.progress", stage="reduce") as beat:
                    beat.count("partitions_reduced", reduced)
                break
            for offset, value in enumerate(mapped):
                index = start + offset
                if value is None:
                    # The worker could not see the shared buffers
                    # (spawned pool, pre-export fork) — recompute here.
                    span.count("fallback_partitions")
                    value = fallback(index)
                results[index] = value
                reduced += 1
            with tracer.span("cube.progress", stage="reduce") as beat:
                beat.count("partitions_reduced", reduced)
    return [result for result in results if result is not None]


def _merge_partition_hits(
    fine: Mapping[int, Sequence[int]],
    max_ways: int,
    partition_hits: Iterable[Mapping[int, Mapping[int, np.ndarray]]],
) -> Dict[int, Dict[int, np.ndarray]]:
    """Exact merge: per-geometry integer hit curves sum across partitions."""
    merged: Dict[int, Dict[int, np.ndarray]] = {}
    for B, counts in fine.items():
        merged[B] = {
            S: np.zeros(max_ways + 1, dtype=np.int64) for S in counts
        }
    for hits in partition_hits:
        for B, per_sets in hits.items():
            for S, curve in per_sets.items():
                merged[B][S] += np.asarray(curve, dtype=np.int64)
    return merged


# -- in-memory form ------------------------------------------------------------


def partitioned_miss_cube(
    streams: Mapping[int, np.ndarray],
    set_counts: SetCounts,
    max_ways: int,
    *,
    partitions: int = DEFAULT_PARTITIONS,
    executor: Optional[SweepExecutor] = None,
    tracer=None,
    cross_check: bool = False,
) -> MissCube:
    """:func:`~repro.cache.misscube.miss_cube`, split across set partitions.

    Bit-identical to the serial engine on the same inputs.  Each block
    size's stream is scattered by the low ``log2(partitions)`` block
    bits; set counts ``S >= partitions`` are reduced per partition (in
    parallel when ``executor`` is) and summed, the rest — inherently
    global — run through the serial engine in the parent.  Partition
    buffers reach forked workers through the shared-memory registry
    (:data:`~repro.engine.shm.SHARED_BUNDLES`), never by pickling.
    """
    blocks = checked_block_words(list(streams))
    per_block = _normalized_set_counts(blocks, set_counts)
    partitions = _checked_partitions(partitions)
    if partitions == 1:
        return miss_cube(streams, set_counts, max_ways)
    executor = executor if executor is not None else SweepExecutor()
    tracer = tracer if tracer is not None else NULL_TRACER
    partition_bits = log2_int(partitions)
    fine, coarse = _split_fine_coarse(
        per_block, partition_bits, {B: 0 for B in blocks}
    )
    fine_blocks = tuple(B for B in blocks if fine[B])
    references = {B: len(streams[B]) for B in blocks}

    token = f"{_SHM_PREFIX}-{uuid.uuid4().hex[:16]}"
    parts: List[Dict[int, np.ndarray]] = [dict() for _ in range(partitions)]
    with tracer.span(
        "cube.partition", partitions=partitions, backend="memory"
    ) as span:
        for B in fine_blocks:
            stream = np.asarray(streams[B], dtype=np.int64)
            span.count("references", len(stream))
            key = stream & (partitions - 1)
            for index in range(partitions):
                parts[index][B] = stream[key == index]
            del stream, key

    exported = False
    try:
        for index in range(partitions):
            _LOCAL_PARTS[(token, index)] = parts[index]
        if executor.is_parallel and fine_blocks:
            for index in range(partitions):
                SHARED_BUNDLES.export(
                    token,
                    f"p{index:03d}",
                    {f"b{B}": array for B, array in parts[index].items()},
                )
            exported = True
        fine_counts = {B: tuple(fine[B]) for B in fine_blocks}
        items = [
            (token, token, index, fine_counts, int(max_ways), cross_check)
            for index in range(partitions)
        ]
        if fine_blocks:
            partition_hits = _reduce_partitions(
                items,
                _reduce_shared,
                lambda index: _partition_hits(
                    parts[index], fine_counts, int(max_ways), cross_check
                ),
                executor,
                tracer,
            )
        else:
            partition_hits = []
    finally:
        for index in range(partitions):
            _LOCAL_PARTS.pop((token, index), None)
        if exported:
            SHARED_BUNDLES.retire(token)

    hits = _merge_partition_hits(fine, max_ways, partition_hits)
    if any(coarse.values()):
        coarse_blocks = [B for B in blocks if coarse[B]]
        with tracer.span(
            "cube.coarse",
            blocks=",".join(str(B) for B in coarse_blocks),
            levels=sum(len(coarse[B]) for B in coarse_blocks),
        ):
            residue = miss_cube(
                {B: streams[B] for B in coarse_blocks},
                {B: coarse[B] for B in coarse_blocks},
                max_ways,
            )
        for B in coarse_blocks:
            hits.setdefault(B, {}).update(residue.hits[B])
    for B in blocks:
        hits.setdefault(B, {})
    return MissCube(references=references, max_ways=int(max_ways), hits=hits)


# -- out-of-core form ----------------------------------------------------------


def _iter_address_chunks(
    addresses: Union[np.ndarray, Iterable[np.ndarray]], chunk_refs: int
) -> Iterable[np.ndarray]:
    if isinstance(addresses, np.ndarray):
        for start in range(0, len(addresses), chunk_refs):
            yield addresses[start : start + chunk_refs]
    else:
        for chunk in addresses:
            yield np.asarray(chunk)


def partitioned_miss_cube_from_addresses(
    addresses: Union[np.ndarray, Iterable[np.ndarray]],
    block_words: Sequence[int],
    set_counts: SetCounts,
    max_ways: int,
    *,
    partitions: int = DEFAULT_PARTITIONS,
    executor: Optional[SweepExecutor] = None,
    tracer=None,
    chunk_refs: int = DEFAULT_CHUNK_REFS,
    spill_dir: Optional[Path] = None,
    cross_check: bool = True,
    progress_refs: Optional[int] = None,
) -> MissCube:
    """The full cube of one byte-address stream, out-of-core and parallel.

    Bit-identical to
    :func:`~repro.cache.misscube.miss_cube_from_addresses` on the same
    stream.  ``addresses`` may be an ndarray (a memory-mapped bundle
    from :meth:`~repro.engine.store.ArtifactStore.get_or_stream` works
    unchanged and is never copied whole) or any iterable of address
    chunks; the partition pass consumes it in O(``chunk_refs``) memory,
    scattering by the coarsest block size's low partition bits into
    per-partition spill segments (:class:`~repro.trace.io.
    StreamingBundleWriter`).  Reduce workers memory-map the finalized
    spill — locators are pickled, buffers never are — and run the
    unmodified serial engine per partition (each one also cross-checked
    against the independent ``A = 1`` sweep unless ``cross_check`` is
    off).  Set counts below the closure threshold are the coarse
    residue: the serial engine answers them in the parent, from the
    original array when it is addressable or from a full spill segment
    written during the same single pass otherwise.
    """
    blocks = checked_block_words(block_words)
    per_block = _normalized_set_counts(blocks, set_counts)
    partitions = _checked_partitions(partitions)
    executor = executor if executor is not None else SweepExecutor()
    tracer = tracer if tracer is not None else NULL_TRACER
    if chunk_refs < 1:
        raise ConfigurationError(
            f"chunk_refs must be at least 1, got {chunk_refs}"
        )
    partition_bits = log2_int(partitions)
    largest = blocks[-1]
    extra_bits = {B: log2_int(largest // B) for B in blocks}
    fine, coarse = _split_fine_coarse(per_block, partition_bits, extra_bits)
    fine_blocks = tuple(B for B in blocks if fine[B])
    fine_counts = {B: tuple(fine[B]) for B in fine_blocks}
    random_access = isinstance(addresses, np.ndarray)
    need_full_spill = any(coarse.values()) and not random_access
    if progress_refs is None:
        progress_refs = 8 * chunk_refs

    own_spill = spill_dir is None
    spill_root = (
        Path(tempfile.mkdtemp(prefix="repro-cubepart-"))
        if own_spill
        else Path(spill_dir)
    )
    digest = f"{_SHM_PREFIX}-{uuid.uuid4().hex[:16]}"
    shift = log2_int(largest * WORD_BYTES)
    consumed = 0
    try:
        writer = StreamingBundleWriter(digest, cache_dir=spill_root)
        try:
            with tracer.span(
                "cube.partition", partitions=partitions, backend="spill"
            ) as span:
                since_beat = 0
                for chunk in _iter_address_chunks(addresses, chunk_refs):
                    chunk = np.asarray(chunk, dtype=np.int64)
                    if not len(chunk):
                        continue
                    if need_full_spill:
                        writer.append("full", chunk)
                    key = (chunk >> shift) & (partitions - 1)
                    for index in range(partitions):
                        writer.append(f"p{index:03d}", chunk[key == index])
                    consumed += len(chunk)
                    since_beat += len(chunk)
                    span.count("references", len(chunk))
                    span.count("chunks")
                    if since_beat >= progress_refs:
                        with tracer.span(
                            "cube.progress", stage="partition"
                        ) as beat:
                            beat.count("references_consumed", consumed)
                        since_beat = 0
            if consumed == 0:
                empty = np.empty(0, dtype=np.int64)
                writer.abort()
                return miss_cube(
                    {B: empty for B in blocks}, per_block, max_ways
                )
            writer.finalize()
        except BaseException:
            writer.abort()
            raise

        spilled = load_arrays(digest, cache_dir=spill_root)
        if spilled is None:
            raise ConfigurationError(
                f"cube spill bundle {digest} vanished before the reduce"
            )
        items = [
            (
                digest,
                str(spill_root),
                index,
                fine_blocks,
                fine_counts,
                int(max_ways),
                cross_check,
            )
            for index in range(partitions)
        ]
        if fine_blocks:
            partition_hits = _reduce_partitions(
                items,
                _reduce_spilled,
                lambda index: _partition_hits(
                    ShiftedStreams(spilled[f"p{index:03d}"], fine_blocks),
                    fine_counts,
                    int(max_ways),
                    cross_check,
                ),
                executor,
                tracer,
            )
        else:
            partition_hits = []

        hits = _merge_partition_hits(fine, max_ways, partition_hits)
        if any(coarse.values()):
            coarse_blocks = [B for B in blocks if coarse[B]]
            full = addresses if random_access else spilled["full"]
            with tracer.span(
                "cube.coarse",
                blocks=",".join(str(B) for B in coarse_blocks),
                levels=sum(len(coarse[B]) for B in coarse_blocks),
            ):
                residue = miss_cube(
                    ShiftedStreams(full, coarse_blocks),
                    {B: coarse[B] for B in coarse_blocks},
                    max_ways,
                )
            for B in coarse_blocks:
                hits.setdefault(B, {}).update(residue.hits[B])
        for B in blocks:
            hits.setdefault(B, {})
        references = {B: consumed for B in blocks}
        return MissCube(
            references=references, max_ways=int(max_ways), hits=hits
        )
    finally:
        delete_entry(digest, cache_dir=spill_root)
        if own_spill:
            shutil.rmtree(spill_root, ignore_errors=True)
