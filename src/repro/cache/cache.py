"""The general set-associative cache model.

Geometry follows the paper's conventions: sizes in words (1 KW = 4 KB),
block (line) sizes in words.  The cache is physically indexed and tagged,
write-allocate, and counts every demand miss identically (the refill cost
model lives in :mod:`repro.cache.refill`).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cache.replacement import LRU, ReplacementPolicy
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError
from repro.utils.units import WORD_BYTES, is_power_of_two, log2_int

__all__ = ["Cache"]


class Cache:
    """A set-associative cache.

    Args:
        size_words: Total capacity in words (power of two).
        block_words: Line size in words (power of two, <= size).
        associativity: Ways per set; 1 gives the paper's direct-mapped L1.
        replacement: Victim policy (defaults to LRU; irrelevant for
            direct-mapped caches).
        write_allocate: When False, write misses update memory without
            filling a line (write-around); the paper's caches allocate on
            writes, but the variant is useful for write-traffic studies.
        name: Label used in reports.
    """

    def __init__(
        self,
        size_words: int,
        block_words: int,
        associativity: int = 1,
        replacement: Optional[ReplacementPolicy] = None,
        write_allocate: bool = True,
        name: str = "cache",
    ) -> None:
        if not is_power_of_two(size_words):
            raise ConfigurationError(f"cache size must be a power of two: {size_words}")
        if not is_power_of_two(block_words):
            raise ConfigurationError(f"block size must be a power of two: {block_words}")
        if block_words > size_words:
            raise ConfigurationError("block size cannot exceed cache size")
        if associativity < 1 or size_words % (block_words * associativity) != 0:
            raise ConfigurationError(
                f"invalid associativity {associativity} for "
                f"{size_words}W cache with {block_words}W blocks"
            )
        self.name = name
        self.write_allocate = write_allocate
        self.size_words = size_words
        self.block_words = block_words
        self.associativity = associativity
        self.num_sets = size_words // (block_words * associativity)
        self._block_shift = log2_int(block_words * WORD_BYTES)
        self._set_mask = self.num_sets - 1
        self.stats = CacheStats()
        self.replacement = replacement if replacement is not None else LRU()
        self.replacement.attach(self.num_sets, associativity)
        # tags[set][way]; None marks an invalid way.
        self._tags = [[None] * associativity for _ in range(self.num_sets)]

    @property
    def size_kw(self) -> float:
        return self.size_words / 1024.0

    def _locate(self, address: int):
        block = address >> self._block_shift
        set_index = block & self._set_mask
        tag = block >> (self.num_sets.bit_length() - 1)
        return set_index, tag

    def probe(self, address: int) -> bool:
        """Check residency without updating state or statistics."""
        set_index, tag = self._locate(address)
        return tag in self._tags[set_index]

    def access(self, address: int, write: bool = False) -> bool:
        """Simulate one access; returns True on hit.

        With the default write-allocate policy, write misses fill a line
        exactly like read misses; with ``write_allocate=False`` a write
        miss bypasses the cache (write-around) and leaves its contents
        untouched.
        """
        set_index, tag = self._locate(address)
        ways = self._tags[set_index]
        try:
            way = ways.index(tag)
            hit = True
        except ValueError:
            hit = False
            if write and not self.write_allocate:
                self.stats.record(hit)
                return hit
            try:
                way = ways.index(None)  # fill an invalid way first
            except ValueError:
                way = self.replacement.victim(set_index)
            ways[way] = tag
        self.replacement.on_access(set_index, way)
        self.stats.record(hit)
        return hit

    def access_many(self, addresses: Iterable[int], write: bool = False) -> CacheStats:
        """Simulate a sequence of accesses; returns the cumulative stats."""
        for address in addresses:
            self.access(int(address), write=write)
        return self.stats

    def flush(self) -> None:
        """Invalidate all lines (statistics are preserved)."""
        self._tags = [[None] * self.associativity for _ in range(self.num_sets)]
        self.replacement.attach(self.num_sets, self.associativity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}: {self.size_kw:g} KW, {self.block_words}W "
            f"blocks, {self.associativity}-way)"
        )
