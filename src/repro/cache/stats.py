"""Cache access statistics."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Counters accumulated by a cache simulation.

    ``misses`` counts demand misses (reads and writes alike: the paper's
    caches are write-allocate and every miss pays the same refill).
    """

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (the paper's ``m_L1``); 0 for an idle cache."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combine two disjoint simulations' counters."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
        )

    def record(self, hit: bool) -> None:
        self.accesses += 1
        if not hit:
            self.misses += 1
