"""Shared power-of-two cache-geometry validation.

Every miss-counting layer sweeps the same kinds of axes — set counts,
associativities, block sizes, capacities — and each axis has the same
power-of-two well-formedness rules.  This module is the single place
those rules live; :mod:`~repro.cache.fastsim`,
:mod:`~repro.cache.stackdist`, :mod:`~repro.cache.misscube`, and the
session-level geometry checks in
:class:`~repro.core.measurement.SuiteMeasurement` all delegate here.

Validators accept an optional ``context`` (e.g. ``"L1-I"`` / ``"L1-D"``)
which is woven into the :class:`~repro.errors.ConfigurationError`
message, so a failure deep inside a sweep still names the cache side the
caller was configuring.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.utils.units import is_power_of_two, kw_to_words, log2_int

__all__ = [
    "geometry_error",
    "checked_levels",
    "checked_ways",
    "checked_block_words",
    "derived_sets",
]


def geometry_error(message: str, context: Optional[str] = None) -> ConfigurationError:
    """A ConfigurationError, prefixed with the cache-side context if any."""
    if context:
        message = f"invalid {context} geometry: {message}"
    return ConfigurationError(message)


def checked_levels(
    set_counts: Sequence[int], context: Optional[str] = None
) -> Dict[int, int]:
    """Map ``num_sets -> log2(num_sets)``, validating every entry."""
    levels: Dict[int, int] = {}
    for num_sets in set_counts:
        if not is_power_of_two(num_sets):
            raise geometry_error(
                f"set count must be a power of two: {num_sets}", context
            )
        levels[int(num_sets)] = log2_int(int(num_sets))
    return levels


def checked_ways(
    ways: Sequence[int], context: Optional[str] = None
) -> Tuple[int, ...]:
    """Validated associativity list (positive integers, at least one)."""
    cleaned = []
    for way in ways:
        if int(way) != way or way < 1:
            raise geometry_error(
                f"associativity must be a positive int: {way}", context
            )
        cleaned.append(int(way))
    if not cleaned:
        raise geometry_error("need at least one associativity", context)
    return tuple(cleaned)


def checked_block_words(
    block_words: Sequence[int], context: Optional[str] = None
) -> Tuple[int, ...]:
    """Validated block sizes, deduplicated and sorted ascending."""
    cleaned = set()
    for block in block_words:
        if int(block) != block or not is_power_of_two(int(block)):
            raise geometry_error(
                f"block size must be a power of two: {block}", context
            )
        cleaned.add(int(block))
    if not cleaned:
        raise geometry_error("need at least one block size", context)
    return tuple(sorted(cleaned))


def derived_sets(
    size_kw: float, block_words: int, context: Optional[str] = None
) -> int:
    """Set count of a direct-mapped cache, validated before simulation.

    ``size // block`` silently yields 0 or a non-power-of-two for odd
    geometries, which would corrupt indexing downstream — reject the
    configuration instead.
    """
    try:
        words = kw_to_words(size_kw)
    except ConfigurationError as exc:
        raise geometry_error(str(exc), context) from exc
    sets = words // block_words
    if words % block_words != 0 or sets <= 0 or not is_power_of_two(sets):
        raise geometry_error(
            f"{size_kw:g} KW with {block_words}-word blocks gives {sets} sets "
            "(need a positive power of two)",
            context,
        )
    return sets
