"""Miss penalty / refill model.

The paper's miss penalties come from a simple refill pipeline: a fixed
2-cycle startup (address to the backing store, first word latency) plus one
cycle per ``refill_rate`` words of the block.  The three penalties studied
— 6, 10, and 18 cycles — correspond to refill rates of 4, 2, and 1 word
per cycle for a 16 W block; the experiments also treat the penalty as a
free parameter, so :class:`RefillModel` supports both views.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["RefillModel", "PAPER_PENALTIES"]

#: The penalties the paper sweeps (in cycles).
PAPER_PENALTIES = (6, 10, 18)


@dataclass(frozen=True)
class RefillModel:
    """Block refill timing.

    Attributes:
        startup_cycles: Fixed latency before the first word arrives.
        refill_rate_words: Words transferred per cycle once streaming.
    """

    startup_cycles: int = 2
    refill_rate_words: float = 2.0

    def __post_init__(self) -> None:
        if self.startup_cycles < 0:
            raise ConfigurationError("startup cycles must be >= 0")
        if self.refill_rate_words <= 0:
            raise ConfigurationError("refill rate must be positive")

    def penalty_cycles(self, block_words: int) -> int:
        """Total miss penalty for a block of ``block_words`` words.

        >>> RefillModel(2, 4).penalty_cycles(16)
        6
        >>> RefillModel(2, 2).penalty_cycles(16)
        10
        >>> RefillModel(2, 1).penalty_cycles(16)
        18
        """
        if block_words <= 0:
            raise ConfigurationError("block size must be positive")
        transfer = -(-block_words // self.refill_rate_words)  # ceil division
        return int(self.startup_cycles + transfer)

    @classmethod
    def for_penalty(cls, penalty_cycles: int, block_words: int) -> "RefillModel":
        """Build the model that yields ``penalty_cycles`` for a block size.

        Used when an experiment specifies the penalty directly (as the
        paper's figures do) but refill-rate bookkeeping is still wanted.
        """
        if penalty_cycles <= 2:
            raise ConfigurationError("penalty must exceed the 2-cycle startup")
        rate = block_words / (penalty_cycles - 2)
        return cls(startup_cycles=2, refill_rate_words=rate)
