"""Exact vectorized miss counting for direct-mapped caches.

The paper's L1 caches are direct-mapped, which admits an O(n log n)
closed-form miss count: a reference misses exactly when the previous
reference that mapped to the same set carried a different tag (or there was
none).  Stable-sorting the reference sequence by set index brings each
set's references together in time order, after which the comparison is a
single vectorized pass.  This is the workhorse behind every cache sweep in
the experiments; its equivalence to the step-by-step
:class:`~repro.cache.cache.Cache` is enforced by property-based tests.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.units import WORD_BYTES, is_power_of_two, log2_int

__all__ = [
    "addresses_to_blocks",
    "direct_mapped_miss_mask",
    "direct_mapped_misses",
    "direct_mapped_miss_sweep",
]


def addresses_to_blocks(addresses: np.ndarray, block_words: int) -> np.ndarray:
    """Reduce byte addresses to cache-block indices.

    Consecutive references to the same block are *not* collapsed here —
    collapsing is only valid for sequential instruction runs (see
    :meth:`~repro.sched.refstream.InstructionStream.cache_block_sequence`);
    data streams must keep every reference because an intervening
    conflicting reference can evict the block.
    """
    if not is_power_of_two(block_words):
        raise ConfigurationError(f"block size must be a power of two: {block_words}")
    shift = log2_int(block_words * WORD_BYTES)
    return np.asarray(addresses, dtype=np.int64) >> shift


def direct_mapped_miss_mask(
    block_sequence: np.ndarray, num_sets: int
) -> np.ndarray:
    """Exact per-reference miss mask of a direct-mapped cache.

    The identity: sort references stably by set; within one set's
    subsequence (still in time order), a reference misses iff it is the
    set's first reference or its tag differs from the previous one.
    Returning the mask (in original reference order) lets a second-level
    cache be simulated on exactly the stream the L1 filters through.
    """
    if not is_power_of_two(num_sets):
        raise ConfigurationError(f"set count must be a power of two: {num_sets}")
    blocks = np.asarray(block_sequence, dtype=np.int64)
    n = len(blocks)
    if n == 0:
        return np.empty(0, dtype=bool)
    set_index = blocks & (num_sets - 1)
    tags = blocks >> log2_int(num_sets)
    order = np.argsort(set_index, kind="stable")
    sorted_sets = set_index[order]
    sorted_tags = tags[order]
    first_of_set = np.empty(n, dtype=bool)
    first_of_set[0] = True
    np.not_equal(sorted_sets[1:], sorted_sets[:-1], out=first_of_set[1:])
    tag_changed = np.empty(n, dtype=bool)
    tag_changed[0] = True
    np.not_equal(sorted_tags[1:], sorted_tags[:-1], out=tag_changed[1:])
    miss_sorted = first_of_set | tag_changed
    miss = np.empty(n, dtype=bool)
    miss[order] = miss_sorted
    return miss


def direct_mapped_misses(block_sequence: np.ndarray, num_sets: int) -> int:
    """Exact miss count of a direct-mapped cache over a block sequence.

    Args:
        block_sequence: Cache-block indices in reference order.
        num_sets: Number of cache sets (= blocks in the cache).
    """
    blocks = np.asarray(block_sequence, dtype=np.int64)
    if len(blocks) == 0:
        if not is_power_of_two(num_sets):
            raise ConfigurationError(f"set count must be a power of two: {num_sets}")
        return 0
    return int(direct_mapped_miss_mask(blocks, num_sets).sum())


def direct_mapped_miss_sweep(
    block_sequence: np.ndarray, set_counts: Sequence[int]
) -> Dict[int, int]:
    """Miss counts for several cache sizes over one block sequence.

    Returns ``{num_sets: misses}``.  Each size is an independent exact
    simulation; the sweep exists for convenience and a small shared-setup
    saving.
    """
    blocks = np.asarray(block_sequence, dtype=np.int64)
    return {
        num_sets: direct_mapped_misses(blocks, num_sets) for num_sets in set_counts
    }
