"""Exact vectorized miss counting for direct-mapped caches.

The paper's L1 caches are direct-mapped, which admits an O(n log n)
closed-form miss count: a reference misses exactly when the previous
reference that mapped to the same set carried a different tag (or there was
none).  Stable-sorting the reference sequence by set index brings each
set's references together in time order, after which the comparison is a
single vectorized pass.  This is the workhorse behind every cache sweep in
the experiments; its equivalence to the step-by-step
:class:`~repro.cache.cache.Cache` is enforced by property-based tests.

For whole size-axis sweeps, the power-of-two set counts *nest*: the set
index of a ``2^k``-set cache is the low ``k`` bits of the block index, so
every swept geometry shares one grouping refined bit by bit.
:func:`direct_mapped_miss_sweep` exploits this to produce exact miss
counts for every size in a single pass over the reference stream instead
of one independent simulation per size (see the function docstring for
the argument).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cache.geometry import checked_block_words, checked_levels
from repro.errors import ConfigurationError
from repro.utils.units import WORD_BYTES, is_power_of_two, log2_int

__all__ = [
    "addresses_to_blocks",
    "direct_mapped_miss_mask",
    "direct_mapped_misses",
    "direct_mapped_miss_sweep",
    "direct_mapped_miss_sweep_masks",
]


def addresses_to_blocks(addresses: np.ndarray, block_words: int) -> np.ndarray:
    """Reduce byte addresses to cache-block indices.

    Consecutive references to the same block are *not* collapsed here —
    collapsing is only valid for sequential instruction runs (see
    :meth:`~repro.sched.refstream.InstructionStream.cache_block_sequence`);
    data streams must keep every reference because an intervening
    conflicting reference can evict the block.
    """
    (block_words,) = checked_block_words((block_words,))
    shift = log2_int(block_words * WORD_BYTES)
    return np.asarray(addresses, dtype=np.int64) >> shift


def direct_mapped_miss_mask(
    block_sequence: np.ndarray, num_sets: int
) -> np.ndarray:
    """Exact per-reference miss mask of a direct-mapped cache.

    The identity: sort references stably by set; within one set's
    subsequence (still in time order), a reference misses iff it is the
    set's first reference or its tag differs from the previous one.
    Returning the mask (in original reference order) lets a second-level
    cache be simulated on exactly the stream the L1 filters through.
    """
    if not is_power_of_two(num_sets):
        raise ConfigurationError(f"set count must be a power of two: {num_sets}")
    blocks = np.asarray(block_sequence, dtype=np.int64)
    n = len(blocks)
    if n == 0:
        return np.empty(0, dtype=bool)
    set_index = blocks & (num_sets - 1)
    tags = blocks >> log2_int(num_sets)
    order = np.argsort(set_index, kind="stable")
    sorted_sets = set_index[order]
    sorted_tags = tags[order]
    first_of_set = np.empty(n, dtype=bool)
    first_of_set[0] = True
    np.not_equal(sorted_sets[1:], sorted_sets[:-1], out=first_of_set[1:])
    tag_changed = np.empty(n, dtype=bool)
    tag_changed[0] = True
    np.not_equal(sorted_tags[1:], sorted_tags[:-1], out=tag_changed[1:])
    miss_sorted = first_of_set | tag_changed
    miss = np.empty(n, dtype=bool)
    miss[order] = miss_sorted
    return miss


def direct_mapped_misses(block_sequence: np.ndarray, num_sets: int) -> int:
    """Exact miss count of a direct-mapped cache over a block sequence.

    Args:
        block_sequence: Cache-block indices in reference order.
        num_sets: Number of cache sets (= blocks in the cache).
    """
    blocks = np.asarray(block_sequence, dtype=np.int64)
    if len(blocks) == 0:
        if not is_power_of_two(num_sets):
            raise ConfigurationError(f"set count must be a power of two: {num_sets}")
        return 0
    return int(direct_mapped_miss_mask(blocks, num_sets).sum())


def _stable_split(
    cur: np.ndarray, idx: Optional[np.ndarray], level: int
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Stably partition every level-``level`` segment by one index bit.

    ``cur`` holds block indices grouped into contiguous per-set segments
    (one per ``2**level``-set-cache set), each segment in time order.
    The segments need no bookkeeping arrays: they are exactly the maximal
    runs of equal low-``level`` bits.  (Inductively: the coarse argsort
    makes equal keys adjacent, and a split keeps each child contiguous
    while adjacent children of *different* parents still differ in their
    low bits, so runs never merge across segment boundaries.)

    Splitting every segment on bit ``level`` — zeros first, ones after,
    both in original order — refines the grouping to the next level's
    sets while preserving time order within each new segment.  All O(n)
    vector ops, no sort.
    """
    n = len(cur)
    low = cur & ((1 << level) - 1)
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(low[1:], low[:-1], out=is_start[1:])
    seg_id = np.cumsum(is_start) - 1
    seg_starts = np.flatnonzero(is_start)
    bit = (cur >> level) & 1
    # ones[i] = number of set bits strictly before position i.
    ones = np.empty(n + 1, dtype=np.int64)
    ones[0] = 0
    np.cumsum(bit, out=ones[1:])
    ones_at_start = ones[seg_starts]
    seg_ends = np.append(seg_starts[1:], n)
    ones_total_seg = ones[seg_ends] - ones_at_start
    zeros_total_seg = (seg_ends - seg_starts) - ones_total_seg
    start = seg_starts[seg_id]
    ones_before = ones[:-1] - ones_at_start[seg_id]
    zeros_before = (np.arange(n, dtype=np.int64) - start) - ones_before
    new_pos = start + np.where(
        bit.astype(bool), zeros_total_seg[seg_id] + ones_before, zeros_before
    )
    out_cur = np.empty_like(cur)
    out_cur[new_pos] = cur
    out_idx = None
    if idx is not None:
        out_idx = np.empty_like(idx)
        out_idx[new_pos] = idx
    return out_cur, out_idx


def _coarse_grouping(
    blocks: np.ndarray, level: int, want_index: bool
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Group the stream by the ``2**level``-set index, time order within.

    Level 0 (a single set) is the stream itself; deeper levels cost one
    stable argsort keyed by the low ``level`` index bits.
    """
    n = len(blocks)
    if level == 0:
        idx = np.arange(n, dtype=np.int64) if want_index else None
        return blocks.copy(), idx
    order = np.argsort(blocks & ((1 << level) - 1), kind="stable")
    return blocks[order], (order if want_index else None)


def _sweep_levels(
    blocks: np.ndarray, levels: Sequence[int], want_masks: bool
) -> Tuple[Dict[int, int], Dict[int, np.ndarray]]:
    """Single-pass hit harvest at every requested ``log2(num_sets)`` level.

    The nesting argument: a ``2^k``-set cache indexes with the low ``k``
    bits of the block index, so the set partition at level ``k+1`` refines
    the one at level ``k`` by exactly one bit.  Starting from one stable
    grouping at the coarsest swept level (conceptually, a stable argsort
    keyed by the largest swept cache's set index, peeled one bit at a
    time), each refinement is a stable in-segment split that keeps every
    set's reference substream in time order.  Within such a substream a
    reference hits iff its immediate predecessor is the *same block*
    (same set and same tag together are just block equality), so every
    level's exact miss count — and, scattered back through the carried
    time indices, its per-reference miss mask — falls out of one
    vectorized adjacent comparison per level.
    """
    n = len(blocks)
    counts: Dict[int, int] = {}
    masks: Dict[int, np.ndarray] = {}
    wanted = set(levels)
    lo, hi = min(wanted), max(wanted)
    cur, idx = _coarse_grouping(blocks, lo, want_masks)

    def harvest(level: int) -> None:
        same = np.empty(n, dtype=bool)
        same[0] = False
        np.equal(cur[1:], cur[:-1], out=same[1:])
        # Segment boundaries need no special casing: adjacent elements in
        # different segments live in different sets, so their blocks differ.
        counts[level] = n - int(np.count_nonzero(same))
        if want_masks:
            miss = np.empty(n, dtype=bool)
            miss[idx] = ~same
            masks[level] = miss

    if lo in wanted:
        harvest(lo)
    for level in range(lo + 1, hi + 1):
        cur, idx = _stable_split(cur, idx, level - 1)
        if level in wanted:
            harvest(level)
    return counts, masks


# Kept under the historical name: the shared validator now lives in
# :mod:`repro.cache.geometry` (one rulebook for every miss-counting layer).
_checked_levels = checked_levels


def direct_mapped_miss_sweep(
    block_sequence: np.ndarray, set_counts: Sequence[int]
) -> Dict[int, int]:
    """Exact miss counts for several cache sizes in one pass.

    Returns ``{num_sets: misses}``.  All sizes are swept together: one
    coarse stable grouping plus one O(n) stable bit-split per doubling of
    the set count, instead of an independent O(n log n) simulation per
    size.  Results are bit-identical to :func:`direct_mapped_misses` per
    size (the property-based suite enforces this against both the
    per-size path and the step-by-step :class:`~repro.cache.cache.Cache`).
    """
    blocks = np.asarray(block_sequence, dtype=np.int64)
    by_sets = _checked_levels(set_counts)
    if not by_sets:
        return {}
    if len(blocks) == 0:
        return {num_sets: 0 for num_sets in by_sets}
    counts, _ = _sweep_levels(blocks, list(by_sets.values()), want_masks=False)
    return {num_sets: counts[level] for num_sets, level in by_sets.items()}


def direct_mapped_miss_sweep_masks(
    block_sequence: np.ndarray, set_counts: Sequence[int]
) -> Dict[int, np.ndarray]:
    """Per-reference miss masks for several cache sizes in one pass.

    Returns ``{num_sets: mask}`` with each mask in original reference
    order, equal to :func:`direct_mapped_miss_mask` of that size.
    """
    blocks = np.asarray(block_sequence, dtype=np.int64)
    by_sets = _checked_levels(set_counts)
    if not by_sets:
        return {}
    if len(blocks) == 0:
        return {num_sets: np.empty(0, dtype=bool) for num_sets in by_sets}
    _, masks = _sweep_levels(blocks, list(by_sets.values()), want_masks=True)
    return {num_sets: masks[level] for num_sets, level in by_sets.items()}
