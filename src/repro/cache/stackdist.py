"""Single-pass all-associativity LRU simulation via stack distances.

The classic Mattson inclusion result: under LRU, a reference hits an
``S``-set, ``A``-way cache iff its *stack distance* within its set — one
plus the number of distinct blocks referenced in that set since the
previous reference to the same block — is at most ``A``.  Distances are a
property of the (stream, set count) pair alone, so histogramming them
answers **every** associativity at once: ``misses(S, A)`` for the whole
``(size x ways)`` plane falls out of one pass per swept set count.

The pass itself is vectorized.  Identities that make it possible:

* *Last-position compression.*  Within one set's reference substream (in
  time order, positions ``0..m-1``), let ``p_i`` be the position of the
  previous reference to the same block (``-1`` if none).  A position
  ``j`` in the window ``(p_i, i)`` contributes a *distinct* block iff it
  is the window's first reference to that block, i.e. iff ``p_j <= p_i``
  — so the stack distance needs no per-block bookkeeping, only the
  ``p`` array.
* *Rank counting.*  Every ``j <= p_i`` satisfies ``p_j < j <= p_i``, so
  ``#{j < i : p_j <= p_i} = (p_i + 1) + #window-firsts`` and the distance
  collapses to ``d_i = #{j < i : p_j <= p_i} - p_i``: an order statistic
  ("how many earlier entries have a previous-position at most mine")
  computed for all references of all sets together by
  :func:`_rank_counts`.  Cross-set pairs cancel exactly in ``C - p``
  because a window never crosses a set boundary (sets are contiguous
  segments) while every ``j <= p_i`` counts regardless of its set.
* *Run compression.*  A reference whose in-set predecessor is the same
  block has stack distance exactly 1 and leaves the LRU stack unchanged
  (it touches the top).  Dropping such runs before the expensive rank
  count preserves every other distance and typically shrinks real
  streams by 2-5x per level; the dropped count is added back as hits at
  every ``ways >= 1``.
* *First references never enter the rank count.*  A block's first
  reference within its set is its first reference ever (the set index is
  a function of the block), and its ``p = -1`` makes its value the level
  minimum — every later element of the level counts it unconditionally.
  So firsts leave the expensive rank count entirely: their contribution
  is a per-level running count of firsts (a cumsum), and with them gone
  the remaining values are globally unique (no tie-breaking needed).
* *Level concatenation.*  All swept set counts share one rank count: lay
  the per-level ``p`` arrays end to end with cumulative position offsets.
  For an element of level ``k`` every element of an earlier level counts
  (smaller position *and* smaller previous-position), adding the same
  constant ``base_k`` to both ``C`` and ``p`` — so the offsets cancel in
  ``d = C - p`` and one merge tree serves the whole plane.

Set counts are swept with the PR 3 nesting: the set index of a
``2^(k+1)``-set cache refines the ``2^k``-set index by one bit, so the
grouped substreams are produced by an LSD radix pass — one O(n) stable
partition per level — with no sort at all.  (A global bit partition keeps
every set contiguous and in time order; it permutes the *order of sets*
relative to :func:`~repro.cache.fastsim._stable_split`, which no miss
count depends on.)  Exactness against
:func:`~repro.cache.assoc_sim.set_associative_misses` and the
step-by-step :class:`~repro.cache.cache.Cache` is enforced by
property-based tests; the ``A = 1`` column is additionally pinned to
:func:`~repro.cache.fastsim.direct_mapped_miss_sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.cache.geometry import checked_levels, checked_ways
from repro.errors import ConfigurationError
from repro.utils.units import is_power_of_two

__all__ = [
    "MissPlane",
    "stack_distance_hits",
    "all_associativity_misses",
    "capacity_associativity_misses",
]

# Packed-merge base width: nodes up to this width are seeded by shifted
# whole-array comparisons (contiguous, no sort) before merging starts.
_SHIFT_BASE_WIDTH = 16

# Fallback-tree node width below which the scatter merge switches to one
# broadcast all-pairs comparison.
_BASE_WIDTH = 32


def _dense_ids_and_prev(blocks: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
    """Dense block ids and previous-occurrence times, from one argsort.

    Returns ``(dense, pocc, num_distinct)`` where ``dense[i]`` is a
    compact id for ``blocks[i]`` and ``pocc[i]`` is the time index of the
    previous reference to the same block (-1 if none).  A block's
    previous occurrence is in the same set at *every* power-of-two set
    count (the set index is a function of the block index), so this is
    computed once per stream and shared by all swept levels.
    """
    n = len(blocks)
    dense = np.empty(n, dtype=np.int64)
    pocc = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return dense, pocc, 0
    ibits = max(int(n - 1).bit_length(), 1)
    if int(blocks.min()) >= 0 and int(blocks.max()) < (1 << (62 - ibits)):
        # Pack (block, time) into one word: one value sort replaces the
        # argsort plus its scattered gathers.
        order = np.sort((blocks << ibits) | np.arange(n, dtype=np.int64))
        sorted_blocks = order >> ibits
        np.bitwise_and(order, (1 << ibits) - 1, out=order)
    else:
        order = np.argsort(blocks, kind="stable")
        sorted_blocks = blocks[order]
    ids_sorted = np.empty(n, dtype=np.int64)
    ids_sorted[0] = 0
    same = sorted_blocks[1:] == sorted_blocks[:-1]
    np.cumsum(~same, out=ids_sorted[1:])
    dense[order] = ids_sorted
    repeat = np.flatnonzero(same) + 1
    pocc[order[repeat]] = order[repeat - 1]
    return dense, pocc, int(ids_sorted[-1]) + 1


def _rank_counts(rank: np.ndarray) -> np.ndarray:
    """``C[i] = #{j < i : rank[j] < rank[i]}`` for a permutation ``rank``.

    A bottom-up merge tree over positions with the whole element state —
    ``(rank << 2f) | (position << f) | count`` — packed into one int64
    per element (``f`` bits per field).  Each level re-sorts rows of
    doubled width in place: ranks occupy the top bits, so ``np.sort``
    orders each positional node by rank while the position and running
    count ride along for free — the tree needs *no* scattered memory
    traffic at all.  When a node forms, every element from its right
    (positional) half counts the left-half elements preceding it in rank
    order — exactly the ``j < i`` (position) with ``rank[j] < rank[i]``
    pairs whose lowest common tree node this is — via one row cumsum of
    the half-membership bit.  Counts accumulate in the low field, which
    never overflows into the position field (``count <= n - 1``) and
    never reorders two elements (ranks are unique and above it).

    Nodes of width <= ``_SHIFT_BASE_WIDTH`` are seeded before any sort
    by shifted whole-array comparisons in position order: offset ``o``
    contributes ``rank[i - o] < rank[i]`` for every in-node pair at that
    offset — contiguous compares, no scattered traffic at all.

    Sentinels pad positions n..P-1 with ranks above every real rank, so
    a sentinel never precedes a real element in rank order and never
    contributes to a real count.  Three packed fields need
    ``3 * ceil(log2 n) <= 63``; beyond that (n > 2^21) the value-range
    splitter :func:`_rank_counts_split` takes over, cutting the problem
    into packable pieces with one cumsum per cut.
    """
    n = len(rank)
    if n < 2:
        return np.zeros(n, dtype=np.int64)
    compiled = kernels.active_rank_kernel()
    if compiled is not None:
        # Compiled Fenwick pass (numba, when importable): exact integer
        # counts, bit-identical to the merge trees below.
        out = np.empty(n, dtype=np.int64)
        tree = np.zeros(n + 1, dtype=np.int64)
        return compiled(np.ascontiguousarray(rank, dtype=np.int64), out, tree)
    nbits = int(n - 1).bit_length()
    if 3 * nbits > 63:
        return _rank_counts_split(rank)
    padded = 1 << nbits
    field = padded - 1
    ranks = np.empty(padded, dtype=np.int32)
    ranks[:n] = rank
    if padded > n:
        # Sentinels: rank = position = padded index, count ignored.
        ranks[n:] = np.arange(n, padded, dtype=np.int32)
    base_width = min(_SHIFT_BASE_WIDTH, padded)
    base_rows = ranks.reshape(-1, base_width)
    counts = np.zeros((padded // base_width, base_width), dtype=np.int32)
    for offset in range(1, base_width):
        counts[:, offset:] += base_rows[:, :-offset] < base_rows[:, offset:]
    packed = ranks.astype(np.int64)
    packed <<= 2 * nbits
    pos64 = np.arange(padded, dtype=np.int64)
    np.left_shift(pos64, nbits, out=pos64)
    packed |= pos64
    np.bitwise_or(packed, counts.ravel(), out=packed)
    colsp1 = np.arange(1, padded + 1, dtype=np.int32)
    half = np.empty(padded, dtype=np.int32)
    before = np.empty(padded, dtype=np.int32)
    level = base_width.bit_length()
    while (1 << level) <= padded:
        width = 1 << level
        rows = packed.reshape(-1, width)
        rows.sort(axis=1)
        half2 = half.reshape(-1, width)
        before2 = before.reshape(-1, width)
        # Bit ``level - 1`` of the position field: 1 for the right half.
        np.right_shift(rows, nbits + level - 1, out=half2, casting="unsafe")
        half2 &= 1
        np.cumsum(half2, axis=1, out=before2)  # inclusive right-half count
        # Left-half elements before slot k in rank order, for right-half
        # elements: k - (inclusive - 1) = (k + 1) - inclusive.
        np.subtract(colsp1[:width], before2, out=before2)
        before2 *= half2
        rows += before2
        level += 1
    out = np.empty(padded, dtype=np.int64)
    out[(packed >> nbits) & field] = packed & field
    return out[:n]


def _rank_counts_scatter(rank: np.ndarray) -> np.ndarray:
    """Scatter-tree fallback for streams too long to pack three fields.

    A top-down merge tree over positions: the root's by-rank order is the
    permutation's inverse (an O(n) scatter, no sort), and each node's
    order splits into its children's by one stable partition on a single
    position bit, counting left-half elements that precede each
    right-half element in rank order.  Nodes of width <= ``_BASE_WIDTH``
    finish with one broadcast all-pairs count instead of more levels.
    Scratch buffers are allocated once and reused across levels.
    """
    n = len(rank)
    nbits = int(n - 1).bit_length()
    padded = 1 << nbits
    dtype = np.int32 if padded <= (1 << 30) else np.int64
    by_rank = np.empty(padded, dtype=dtype)
    by_rank[rank] = np.arange(n, dtype=dtype)
    if padded > n:
        by_rank[n:] = np.arange(n, padded, dtype=dtype)
    counts = np.zeros(padded, dtype=dtype)
    cols = np.arange(padded, dtype=dtype)
    bit = np.empty(padded, dtype=bool)
    ones = np.empty(padded, dtype=dtype)
    scratch = np.empty(padded, dtype=dtype)
    other = np.empty(padded, dtype=dtype)
    level = nbits
    while (1 << level) > _BASE_WIDTH:
        width = 1 << level
        shape = (padded >> level, width)
        rows = by_rank.reshape(shape)
        bit2 = bit.reshape(shape)
        ones2 = ones.reshape(shape)
        pos2 = scratch.reshape(shape)
        np.bitwise_and(np.right_shift(rows, level - 1, out=ones2), 1, out=ones2)
        np.not_equal(ones2, 0, out=bit2)
        np.cumsum(bit2, axis=1, out=ones2)
        ones2 -= bit2  # ones strictly before, per row
        np.subtract(cols[:width], ones2, out=pos2)  # zeros strictly before
        # Right-half elements: left-half elements before them in rank
        # order are exactly their smaller-rank, smaller-position pairs.
        # Positions are unique, so fancy-index accumulation is safe.
        counts[by_rank] += (pos2 * bit2).ravel()
        zeros_total = width - ones2[:, -1:] - bit2[:, -1:]
        np.add(ones2, zeros_total, out=ones2)
        np.copyto(pos2, ones2, where=bit2)  # pos2 is now the new position
        split2 = other.reshape(shape)
        np.put_along_axis(split2, pos2, rows, axis=1)
        by_rank, other = other, by_rank
        level -= 1
    width = 1 << level
    rows = by_rank.reshape(padded >> level, width)
    pairs = rows[:, :, None] > rows[:, None, :]
    pairs &= np.tril(np.ones((width, width), dtype=bool), -1)
    counts[by_rank] += pairs.sum(axis=2, dtype=dtype).ravel()
    return counts[:n].astype(np.int64, copy=False)


def _rank_counts_split(rank: np.ndarray) -> np.ndarray:
    """Rank counts for streams too long to pack three int64 fields.

    Splits on the *value* midpoint instead of walking position bits: for
    a cut at ``mid``, every pair with the smaller value below the cut and
    the larger value above it is counted by one cumsum (left-half
    elements positionally before each right-half element), and the two
    halves — each positionally stable, with disjoint value ranges — are
    independent subproblems.  Ranks are unique, so each cut at least
    halves the value span and every piece reaches the packed merge tree
    of :func:`_rank_counts` within ``log2(n) - 21`` cuts, keeping the
    whole computation on the no-scatter fast path: O(n) work per cut
    plus the packed tree per piece, against the scatter tree's
    ``log2(n)`` full-stream scatter levels.
    """
    n = len(rank)
    out = np.zeros(n, dtype=np.int64)
    idtype = np.int32 if n <= (1 << 31) - 1 else np.int64
    span = 1 << int(n - 1).bit_length()
    stack = [(rank.astype(idtype, copy=False), np.arange(n, dtype=idtype), 0, span)]
    while stack:
        vals, idx, lo, hi = stack.pop()
        m = len(vals)
        if m < 2:
            continue
        if 3 * int(m - 1).bit_length() <= 63:
            # Packable piece: compact the surviving values to a dense
            # local permutation (order is preserved, so counts are the
            # piece's exact pair counts).
            order = np.argsort(vals, kind="stable")
            local = np.empty(m, dtype=np.int64)
            local[order] = np.arange(m, dtype=np.int64)
            out[idx] += _rank_counts(local)
            continue
        mid = (lo + hi) >> 1
        right = vals >= mid
        left = ~right
        # Every left-half element positionally before a right-half one
        # has both the smaller position and the smaller value.
        out[idx[right]] += np.cumsum(left, dtype=np.int64)[right]
        stack.append((vals[right], idx[right], mid, hi))
        stack.append((vals[left], idx[left], lo, mid))
    return out


def _partition_bit(
    cur: np.ndarray,
    idx: np.ndarray,
    out_cur: np.ndarray,
    out_idx: np.ndarray,
    level: int,
    bit: np.ndarray,
    ones: np.ndarray,
    pos: np.ndarray,
    cols: np.ndarray,
) -> None:
    """Stably partition the whole stream by bit ``level`` of ``cur``.

    Zeros first, ones after, original order within each half.  Any two
    adjacent elements of different sets already differ in their low
    ``level`` bits, so a *global* stable partition keeps every refined
    set contiguous and in time order — no per-segment bookkeeping.
    """
    np.bitwise_and(np.right_shift(cur, level, out=ones), 1, out=ones)
    np.not_equal(ones, 0, out=bit)
    np.cumsum(bit, out=ones)
    total_ones = int(ones[-1])
    ones -= bit  # ones strictly before
    np.subtract(cols, ones, out=pos)
    np.add(ones, len(cur) - total_ones, out=ones)
    np.copyto(pos, ones, where=bit)  # destination slot of every element
    out_cur[pos] = cur
    out_idx[pos] = idx


class _LevelSlice:
    """Per-level harvest: non-first previous-positions plus bookkeeping.

    ``prev``/``firsts_before`` are parallel arrays over the level's
    *non-first* survivors only; ``compressed`` is the full survivor
    count (firsts included — the level's position-coordinate range),
    ``num_firsts`` the first-reference count and ``removed`` the in-set
    repeats dropped by run compression (stack distance exactly 1).
    ``seg_starts`` (compressed positions where a new set's segment
    begins, harvested only for slices past the packed limit) lets
    :func:`_split_slice` cut the slice at set boundaries.
    """

    __slots__ = (
        "level",
        "prev",
        "firsts_before",
        "compressed",
        "num_firsts",
        "removed",
        "seg_starts",
    )

    def __init__(
        self,
        level: int,
        prev: np.ndarray,
        firsts_before: np.ndarray,
        compressed: int,
        num_firsts: int,
        removed: int,
        seg_starts: Optional[np.ndarray] = None,
    ) -> None:
        self.level = level
        self.prev = prev
        self.firsts_before = firsts_before
        self.compressed = compressed
        self.num_firsts = num_firsts
        self.removed = removed
        self.seg_starts = seg_starts


def _harvest_level(
    cur: np.ndarray,
    idx: np.ndarray,
    pocc: np.ndarray,
    gmap: np.ndarray,
    keep: np.ndarray,
    cpos: np.ndarray,
    level: int,
) -> _LevelSlice:
    """Compress one level's grouped stream and extract ``p`` per survivor.

    ``cur``/``idx`` hold the grouped stream (contiguous per-set segments,
    time order within).  Adjacent equal blocks are in-set repeats of
    stack distance 1; they are dropped and counted separately.  For a
    survivor, the previous occurrence of its block (``pocc``, a time
    index shared by all levels) maps through ``gmap`` to the compressed
    position of that occurrence's *run start* — the most recent survivor
    of the same block — which is exactly its compressed-coordinates
    previous position.  First references (no previous occurrence — a
    block's first in-set reference is its first reference ever) are
    split out: only their running count is kept, not their positions.
    """
    n = len(cur)
    keep[0] = True
    np.not_equal(cur[1:], cur[:-1], out=keep[1:])
    np.cumsum(keep, out=cpos)
    cpos -= 1  # grouped position -> compressed position of its run start
    gmap[idx] = cpos
    cidx = idx[keep]
    prev_time = pocc[cidx]
    has_prev = prev_time >= 0
    prev = gmap[prev_time[has_prev]]
    firsts_before = np.cumsum(~has_prev, dtype=np.int32)[has_prev]
    compressed = len(cidx)
    seg_starts = None
    if level > 0 and len(prev) > _PACKED_LIMIT:
        # Oversized slice: record where each set's segment starts (the
        # key's low ``level`` bits are the set index) so the rank count
        # can be cut at set boundaries instead of spilling into the
        # slow unpacked path.
        sets = cur[keep] & ((1 << level) - 1)
        seg_starts = np.flatnonzero(sets[1:] != sets[:-1]) + 1
        seg_starts = np.concatenate((np.zeros(1, dtype=seg_starts.dtype), seg_starts))
    return _LevelSlice(
        level,
        prev,
        firsts_before,
        compressed,
        compressed - len(prev),
        n - compressed,
        seg_starts,
    )


def _stream_slices(
    blocks: np.ndarray, wanted: Sequence[int]
) -> Dict[int, _LevelSlice]:
    """Harvest one stream's compressed slices at every wanted level.

    ``wanted`` is a sorted list of ``log2(num_sets)`` levels.  One LSD
    radix chain visits them all: the stream is stably partitioned one
    set-index bit at a time, and each wanted level is compressed and
    harvested in passing.  Returns ``{level: slice}``; the slices are
    self-contained (positions are level-local), so slices from
    *different streams* — other set-count levels, or other block sizes
    entirely — can share one rank count via :func:`_concatenated_hits`.
    """
    n = len(blocks)
    hi = wanted[-1]
    dense, pocc, distinct = _dense_ids_and_prev(blocks)
    # Radix keys: set bits in the low ``hi`` positions (so every swept
    # level partitions on a key bit) with the dense block id above them
    # (so key equality is block equality, for run compression).
    key64 = (dense << hi) | (blocks & ((1 << hi) - 1))
    compact = distinct << hi <= (1 << 31) - 1 and n <= (1 << 31) - 1
    dtype = np.int32 if compact else np.int64
    cur = key64.astype(dtype, copy=False)
    idx = np.arange(n, dtype=dtype)
    out_cur = np.empty(n, dtype=dtype)
    out_idx = np.empty(n, dtype=dtype)
    pocc = pocc.astype(dtype, copy=False)
    gmap = np.empty(n, dtype=dtype)
    bit = np.empty(n, dtype=bool)
    ones = np.empty(n, dtype=dtype)
    pos = np.empty(n, dtype=dtype)
    cols = np.arange(n, dtype=dtype)
    wanted_set = set(wanted)
    slices: Dict[int, _LevelSlice] = {}
    for level in range(hi + 1):
        if level in wanted_set:
            slices[level] = _harvest_level(cur, idx, pocc, gmap, bit, ones, level)
        if level < hi:
            _partition_bit(cur, idx, out_cur, out_idx, level, bit, ones, pos, cols)
            cur, out_cur = out_cur, cur
            idx, out_idx = out_idx, idx
    return slices


def stack_distance_hits(
    block_sequence: np.ndarray, set_counts: Sequence[int], max_ways: int
) -> Dict[int, np.ndarray]:
    """Per-set-count cumulative LRU hit counts, capped at ``max_ways``.

    Returns ``{num_sets: hits}`` where ``hits[a]`` is the number of
    references whose set-relative stack distance is at most ``a``
    (``a = 0..max_ways``), i.e. the exact hit count of an
    ``a``-way LRU cache with ``num_sets`` sets.  One radix pass groups
    all set counts; one shared rank count covers every level.
    """
    if max_ways < 1:
        raise ConfigurationError(f"max_ways must be at least 1, got {max_ways}")
    max_ways = int(max_ways)
    blocks = np.asarray(block_sequence, dtype=np.int64)
    by_sets = checked_levels(set_counts)
    if not by_sets:
        return {}
    if len(blocks) == 0:
        return {
            num_sets: np.zeros(max_ways + 1, dtype=np.int64) for num_sets in by_sets
        }
    wanted = sorted(set(by_sets.values()))
    slices = _stream_slices(blocks, wanted)
    hits_list = _concatenated_hits([slices[level] for level in wanted], max_ways)
    hits_by_level = dict(zip(wanted, hits_list))
    return {num_sets: hits_by_level[level] for num_sets, level in by_sets.items()}


#: Largest concatenation the packed merge tree of :func:`_rank_counts`
#: accepts (three ``ceil(log2 n)``-bit fields in one int64).  Beyond it
#: the concatenation is chunked at slice — and, within oversized
#: slices, at set-segment — boundaries to stay packed; the independence
#: argument below makes any such grouping exact, so chunking is purely
#: a speed choice.
_PACKED_LIMIT = 1 << 21


def _split_slice(s: _LevelSlice, limit: int) -> List[_LevelSlice]:
    """Cut an oversized slice at set-segment boundaries.

    A non-first element's previous position lies in the *same* set
    segment as the element itself (everything between them in the
    grouped layout shares its set), so slicing the element array
    wherever a new segment starts yields self-contained pseudo-slices:
    positions rebase by the group's first segment start, and the firsts
    running count rebases by the firsts before that start (``start - a``
    — of the ``start`` survivors before it, ``a`` are the non-firsts
    already emitted).  The pieces rejoin :func:`_concatenated_hits` as
    independent slices whose histograms sum to the original's; run
    removals stay with the caller.  A single segment larger than
    ``limit`` stays whole — :func:`_rank_counts_split` handles it.
    """
    segs = s.seg_starts
    if segs is None or len(segs) < 2 or len(s.prev) <= limit:
        return [s]
    element_seg = np.searchsorted(segs, s.prev, side="right") - 1
    counts = np.bincount(element_seg, minlength=len(segs))
    group_lo: List[int] = [0]
    acc = 0
    for k, c in enumerate(counts):
        if acc and acc + c > limit:
            group_lo.append(k)
            acc = 0
        acc += int(c)
    if len(group_lo) == 1:
        return [s]
    bounds = group_lo + [len(segs)]
    cuts = np.searchsorted(element_seg, bounds, side="left")
    pieces: List[_LevelSlice] = []
    for g in range(len(group_lo)):
        a, b = int(cuts[g]), int(cuts[g + 1])
        start = int(segs[bounds[g]])
        end = int(segs[bounds[g + 1]]) if bounds[g + 1] < len(segs) else s.compressed
        pieces.append(
            _LevelSlice(
                s.level,
                s.prev[a:b] - start,
                s.firsts_before[a:b] - (start - a),
                end - start,
                (end - start) - (b - a),
                0,
            )
        )
    return pieces


def _concatenated_hits(
    slices: Sequence[_LevelSlice], max_ways: int
) -> List[np.ndarray]:
    """Shared rank counts over every slice's compressed stream.

    Slices are laid end to end and share a rank count per chunk; chunks
    are cut at slice boundaries — oversized slices are first cut at
    set-segment boundaries by :func:`_split_slice` — so each chunk
    stays within :data:`_PACKED_LIMIT` and on the packed (no-scatter)
    merge tree whenever the stream's structure allows.  Returns the
    cumulative hit counts per slice, in input order, with each slice's
    run-compression removals added back at every ``ways >= 1``.
    """
    limit = _PACKED_LIMIT
    pieces: List[Tuple[int, _LevelSlice]] = []
    for ordinal, s in enumerate(slices):
        for piece in _split_slice(s, limit):
            pieces.append((ordinal, piece))
    histograms = np.zeros((len(slices), max_ways + 2), dtype=np.int64)
    chunk: List[Tuple[int, _LevelSlice]] = []
    chunk_len = 0

    def flush() -> None:
        for (ordinal, _), hist in zip(chunk, _chunk_histograms([p for _, p in chunk], max_ways)):
            histograms[ordinal] += hist

    for ordinal, piece in pieces:
        m = len(piece.prev)
        if chunk and chunk_len + m > limit:
            flush()
            chunk, chunk_len = [], 0
        chunk.append((ordinal, piece))
        chunk_len += m
    if chunk:
        flush()
    hits_list: List[np.ndarray] = []
    for ordinal, s in enumerate(slices):
        hits = np.cumsum(histograms[ordinal])[: max_ways + 1]
        hits[1:] += s.removed  # dropped in-set repeats: distance exactly 1
        hits_list.append(hits)
    return hits_list


def _chunk_histograms(
    slices: Sequence[_LevelSlice], max_ways: int
) -> np.ndarray:
    """One shared rank count over every slice's compressed stream.

    The per-slice ``p`` arrays (non-firsts only) are laid end to end
    with cumulative position offsets ``base_k`` (full survivor counts,
    firsts included, so ``p`` keeps its positional meaning).  For an
    element of slice ``k``, every non-first of an earlier slice has both
    a smaller position and a smaller offset value, so the tree counts it
    automatically, adding a constant that cancels in ``d = C - p``.
    The argument only needs each slice's positions to be level-local and
    its non-first values unique, so the slices may come from different
    set-count levels of one stream *or from different streams entirely*
    (the miss cube concatenates every (block size, level) pair this
    way).  Firsts are cheaper than the tree: a first of an earlier slice
    always counts (one constant per slice), and a first of the *same*
    slice counts exactly when it is positionally earlier (the
    per-element ``firsts_before`` cumsum from the harvest).  With firsts
    out, the remaining values are globally unique — the counting-sort
    rank needs no tie-breaking.  Returns the raw per-slice distance
    histograms (``max_ways + 2`` bins, distances clipped at
    ``max_ways + 1``), in input order; the caller turns them into
    cumulative hits and restores run-compression removals — histograms
    are additive, so pieces of a split slice simply sum.
    """
    total = sum(len(s.prev) for s in slices)
    span_total = sum(s.compressed for s in slices)
    vdtype = np.int32 if span_total < (1 << 31) - 1 else np.int64
    # vals = (base + p) + 1 over non-firsts of every level.
    vals = np.empty(total, dtype=vdtype)
    extra = np.empty(total, dtype=vdtype)
    level_of = np.empty(total, dtype=np.int64)
    base = 0
    firsts_so_far = 0
    fill = 0
    for ordinal, s in enumerate(slices):
        m = len(s.prev)
        span = slice(fill, fill + m)
        np.add(s.prev, base + 1, out=vals[span], casting="unsafe")
        # Firsts counted without the tree: all of the earlier levels',
        # plus the positionally-earlier ones of this level.
        np.add(s.firsts_before, firsts_so_far, out=extra[span], casting="unsafe")
        level_of[span] = ordinal
        base += s.compressed
        firsts_so_far += s.num_firsts
        fill += m
    counts = np.bincount(vals, minlength=base)
    offsets = np.cumsum(counts)
    offsets -= counts
    if vdtype is np.int32:
        offsets = offsets.astype(np.int32, copy=False)
    rank = offsets[vals]
    distance = _rank_counts(rank)
    distance += 1
    distance += extra
    distance -= vals
    np.minimum(distance, max_ways + 1, out=distance)
    hist_key = level_of
    hist_key *= max_ways + 2
    hist_key += distance
    return np.bincount(
        hist_key, minlength=len(slices) * (max_ways + 2)
    ).reshape(len(slices), max_ways + 2)


@dataclass(frozen=True)
class MissPlane:
    """Exact LRU miss counts over a whole ``(set count x ways)`` plane.

    Attributes:
        references: Stream length (the miss count denominator).
        max_ways: Largest associativity the plane answers.
        hits: ``{num_sets: hits}`` cumulative hit counts by ways
            (:func:`stack_distance_hits` output).
    """

    references: int
    max_ways: int
    hits: Mapping[int, np.ndarray]

    @property
    def set_counts(self) -> Tuple[int, ...]:
        return tuple(sorted(self.hits))

    def misses(self, num_sets: int, ways: int) -> int:
        """Exact miss count of a ``num_sets x ways`` LRU cache."""
        if num_sets not in self.hits:
            raise ConfigurationError(
                f"plane does not cover {num_sets} sets "
                f"(covered: {list(self.set_counts)})"
            )
        if not 1 <= ways <= self.max_ways:
            raise ConfigurationError(
                f"plane covers 1..{self.max_ways} ways, asked for {ways}"
            )
        return self.references - int(self.hits[num_sets][ways])

    def capacity_misses(self, size_blocks: int, ways: int) -> int:
        """Miss count at fixed capacity: ``size_blocks / ways`` sets."""
        if ways < 1 or size_blocks % ways != 0:
            raise ConfigurationError(
                f"associativity {ways} does not divide {size_blocks} blocks"
            )
        num_sets = size_blocks // ways
        if not is_power_of_two(num_sets):
            raise ConfigurationError(
                f"{size_blocks} blocks / {ways} ways is not a "
                "power-of-two set count"
            )
        return self.misses(num_sets, ways)


# Kept under the historical name: the shared validator now lives in
# :mod:`repro.cache.geometry`.
_checked_ways = checked_ways


def all_associativity_misses(
    block_sequence: np.ndarray,
    set_counts: Sequence[int],
    ways: Sequence[int],
) -> Dict[Tuple[int, int], int]:
    """Exact miss counts for every ``(num_sets, ways)`` point at once.

    Returns ``{(num_sets, ways): misses}`` over the full cross product,
    bit-identical to one :func:`~repro.cache.assoc_sim.
    set_associative_misses` call per point, from a single stack-distance
    pass per set count.
    """
    ways = _checked_ways(ways)
    blocks = np.asarray(block_sequence, dtype=np.int64)
    hits = stack_distance_hits(blocks, set_counts, max(ways))
    n = len(blocks)
    return {
        (num_sets, way): n - int(level_hits[way])
        for num_sets, level_hits in hits.items()
        for way in ways
    }


def capacity_associativity_misses(
    block_sequence: np.ndarray,
    capacities_blocks: Sequence[int],
    ways: Sequence[int],
) -> Dict[Tuple[int, int], int]:
    """Fixed-capacity plane: ``{(size_blocks, ways): misses}``.

    Each capacity ``c`` at associativity ``a`` is a ``c / a``-set cache,
    so the plane isolates the conflict-miss effect of associativity the
    paper's Section 6 conjecture is about.  All distinct set counts are
    swept in one pass.
    """
    ways = _checked_ways(ways)
    set_counts = set()
    pairs: Dict[Tuple[int, int], int] = {}
    for capacity in capacities_blocks:
        if not is_power_of_two(capacity):
            raise ConfigurationError(
                f"capacity must be a power of two: {capacity}"
            )
        for way in ways:
            if capacity % way != 0 or not is_power_of_two(capacity // way):
                raise ConfigurationError(
                    f"associativity {way} does not divide {capacity} blocks "
                    "into a power-of-two set count"
                )
            pairs[(int(capacity), way)] = capacity // way
            set_counts.add(capacity // way)
    blocks = np.asarray(block_sequence, dtype=np.int64)
    hits = stack_distance_hits(blocks, sorted(set_counts), max(ways))
    n = len(blocks)
    return {
        (capacity, way): n - int(hits[num_sets][way])
        for (capacity, way), num_sets in pairs.items()
    }
