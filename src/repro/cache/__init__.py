"""Cache simulation: the reproduction's ``cacheSIM``.

Two complementary simulators:

* :class:`~repro.cache.cache.Cache` — a general set-associative cache with
  pluggable replacement, used by the API, the examples, and as the oracle
  for the fast path's correctness tests;
* :mod:`~repro.cache.fastsim` — an exact, vectorized miss counter for
  direct-mapped caches (the organization the paper's L1 uses throughout),
  fast enough to sweep full multiprogrammed traces over every cache size
  in pure Python;
* :mod:`~repro.cache.stackdist` — a vectorized single-pass
  all-associativity LRU simulator (Mattson stack distances): one pass
  yields exact miss counts for every (set count, ways) point of a
  :class:`~repro.cache.stackdist.MissPlane` at once;
* :mod:`~repro.cache.misscube` — the unified engine over both: one pass
  over a byte-address stream answers the whole
  (block size x set count x ways) cube as a
  :class:`~repro.cache.misscube.MissCube`, sharing a single rank count
  across every block size and set count;
* :mod:`~repro.cache.cubepart` — the set-partitioned out-of-core and
  parallel driver over the same engine: partitions a byte-address
  stream by coarse set index, reduces partitions independently (in
  worker processes when an executor is supplied), and merges counts
  bit-identical to the serial one-shot cube.

:mod:`~repro.cache.refill` models the paper's miss penalties (a 2-cycle
startup plus the block transfer at the memory system's refill rate), and
:class:`~repro.cache.hierarchy.CacheHierarchy` composes a split L1 over a
constant-latency backing store.
"""

from repro.cache.stats import CacheStats
from repro.cache.replacement import LRU, FIFO, RandomReplacement, ReplacementPolicy
from repro.cache.cache import Cache
from repro.cache.refill import RefillModel, PAPER_PENALTIES
from repro.cache.fastsim import (
    direct_mapped_miss_mask,
    direct_mapped_misses,
    direct_mapped_miss_sweep,
    direct_mapped_miss_sweep_masks,
    addresses_to_blocks,
)
from repro.cache.assoc_sim import associative_miss_sweep, set_associative_misses
from repro.cache.stackdist import (
    MissPlane,
    all_associativity_misses,
    capacity_associativity_misses,
    stack_distance_hits,
)
from repro.cache.misscube import (
    MISS_CUBE_VERSION,
    MissCube,
    ShiftedStreams,
    capacity_set_counts,
    miss_cube,
    miss_cube_from_addresses,
)
from repro.cache.cubepart import (
    partitioned_miss_cube,
    partitioned_miss_cube_from_addresses,
)
from repro.cache.hierarchy import CacheHierarchy

__all__ = [
    "CacheStats",
    "ReplacementPolicy",
    "LRU",
    "FIFO",
    "RandomReplacement",
    "Cache",
    "RefillModel",
    "PAPER_PENALTIES",
    "direct_mapped_miss_mask",
    "direct_mapped_misses",
    "direct_mapped_miss_sweep",
    "direct_mapped_miss_sweep_masks",
    "addresses_to_blocks",
    "set_associative_misses",
    "associative_miss_sweep",
    "MissPlane",
    "stack_distance_hits",
    "all_associativity_misses",
    "capacity_associativity_misses",
    "MISS_CUBE_VERSION",
    "MissCube",
    "ShiftedStreams",
    "capacity_set_counts",
    "miss_cube",
    "miss_cube_from_addresses",
    "partitioned_miss_cube",
    "partitioned_miss_cube_from_addresses",
    "CacheHierarchy",
]
