"""Single-pass (block size × set count × ways) miss-cube engine.

The repo grew the design-space axes one PR at a time: the set-count axis
(one LSD radix chain per stream, :mod:`~repro.cache.fastsim`), then the
``(sets × ways)`` plane (stack distances over the same chain,
:mod:`~repro.cache.stackdist`).  The block-size axis completes the cube:
block sizes are powers of two like set counts, so one pass over a single
byte-address stream answers **every** ``(B, S, A)`` geometry at once.

How the block axis folds into the existing machinery:

* *Blocks are shifts.*  A ``2B``-word block index is the ``B``-word
  block index shifted right by one, so the per-block-size streams are
  all views of one address stream (:func:`~repro.cache.fastsim.
  addresses_to_blocks` hoisted into the engine).
* *Per-block radix chains, one shared rank count.*  Set-index bits live
  in a different bit window of the address for every block size
  (``[log2(B), log2(B) + log2(S))``), and windows at different offsets
  do not nest — a single refinement chain cannot serve two block sizes.
  What *does* unify is the expensive part: the order-statistic tree.
  :func:`~repro.cache.stackdist._concatenated_hits` only requires each
  slice's positions to be level-local, so every ``(block size, level)``
  slice of every stream is laid end to end and one rank count — the
  dominant cost of the whole pass — serves the entire cube.  The cheap
  O(n) bit partitions run once per block size.
* *Whole-stream run compression.*  An adjacent repeat of the same block
  maps to the same set at *every* set count of that block size and its
  stack distance is exactly 1 everywhere, so it is dropped once, before
  the radix chain, and added back as a hit at every ``ways >= 1`` per
  level.  Instruction streams shrink multi-x; the per-level harvest then
  only compresses the repeats that become adjacent after grouping.

Exactness is enforced three ways: property-based tests against the
dict-LRU oracle (:func:`~repro.cache.assoc_sim.set_associative_misses`)
and the step-by-step :class:`~repro.cache.cache.Cache`; guard tests
pinning each block size's plane to the retired per-``B`` stack-distance
path bit for bit; and a fatal cross-check of every ``A = 1`` base
against the independent :func:`~repro.cache.fastsim.
direct_mapped_miss_sweep` when a cube artifact is built
(:meth:`~repro.core.measurement.SuiteMeasurement.icache_miss_cube`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache.fastsim import addresses_to_blocks
from repro.cache.geometry import checked_block_words, checked_levels, geometry_error
from repro.cache.stackdist import (
    MissPlane,
    _concatenated_hits,
    _LevelSlice,
    _stream_slices,
)
from repro.errors import ConfigurationError
from repro.utils.units import is_power_of_two, log2_int

__all__ = [
    "MISS_CUBE_VERSION",
    "MissCube",
    "ShiftedStreams",
    "miss_cube",
    "miss_cube_from_addresses",
    "capacity_set_counts",
]

#: Version of the whole-cube miss artifacts (``imiss_cube`` /
#: ``dmiss_cube``): exact LRU miss counts for every covered
#: (block size, set count, ways) geometry from one engine pass.  Bump
#: when the engine or the cube schema changes behaviour; subsumes the
#: retired ``MISS_AXIS_VERSION`` and ``MISS_PLANE_VERSION`` schemas.
MISS_CUBE_VERSION = 1

SetCounts = Union[Sequence[int], Mapping[int, Sequence[int]]]


def capacity_set_counts(
    block_words: Sequence[int],
    capacity_words: int,
    context: Optional[str] = None,
) -> Dict[int, List[int]]:
    """Per-block-size set counts covering every geometry up to a capacity.

    For each block size ``B``, every power-of-two set count from 1 to
    ``capacity_words // B`` — i.e. every direct-mapped size up to the
    capacity, and through :meth:`MissCube.capacity_misses` every
    ``(size, ways)`` split of those capacities as well.
    """
    blocks = checked_block_words(block_words, context=context)
    if not is_power_of_two(capacity_words):
        raise geometry_error(
            f"cube capacity must be a power of two: {capacity_words}", context
        )
    if capacity_words < blocks[-1]:
        raise geometry_error(
            f"cube capacity of {capacity_words} words cannot hold a "
            f"{blocks[-1]}-word block",
            context,
        )
    return {
        B: [1 << k for k in range(log2_int(capacity_words // B) + 1)]
        for B in blocks
    }


@dataclass(frozen=True)
class MissCube:
    """Exact LRU miss counts over a ``(block size × sets × ways)`` cube.

    Attributes:
        references: ``{block_words: stream length}`` — the miss-count
            denominator per block size (block sizes may have different
            stream lengths: instruction fetch runs collapse to fewer
            references at larger blocks).
        max_ways: Largest associativity the cube answers.
        hits: ``{block_words: {num_sets: hits}}`` cumulative hit counts
            by ways (:func:`~repro.cache.stackdist.stack_distance_hits`
            layout per block size).
    """

    references: Mapping[int, int]
    max_ways: int
    hits: Mapping[int, Mapping[int, np.ndarray]]

    @property
    def block_words(self) -> Tuple[int, ...]:
        return tuple(sorted(self.hits))

    def _checked_block(self, block_words: int) -> int:
        if block_words not in self.hits:
            raise ConfigurationError(
                f"cube does not cover {block_words}-word blocks "
                f"(covered: {list(self.block_words)})"
            )
        return int(block_words)

    def set_counts(self, block_words: int) -> Tuple[int, ...]:
        """Set counts covered at one block size."""
        return tuple(sorted(self.hits[self._checked_block(block_words)]))

    def plane(
        self,
        block_words: int,
        max_sets: Optional[int] = None,
        max_ways: Optional[int] = None,
    ) -> MissPlane:
        """One block size's ``(sets × ways)`` plane, optionally trimmed.

        With bounds, the returned plane covers exactly the set counts up
        to ``max_sets`` and ways up to ``max_ways`` — the same shape the
        retired per-``B`` plane artifacts had, bit for bit.
        """
        block = self._checked_block(block_words)
        ways = self.max_ways if max_ways is None else int(max_ways)
        if not 1 <= ways <= self.max_ways:
            raise ConfigurationError(
                f"cube covers 1..{self.max_ways} ways, asked for {ways}"
            )
        hits = self.hits[block]
        if max_sets is not None:
            if max_sets not in hits:
                raise ConfigurationError(
                    f"cube does not cover {max_sets} sets at "
                    f"{block}-word blocks (covered: {list(self.set_counts(block))})"
                )
            hits = {s: h for s, h in hits.items() if s <= max_sets}
        if ways != self.max_ways:
            hits = {s: h[: ways + 1] for s, h in hits.items()}
        return MissPlane(
            references=self.references[block], max_ways=ways, hits=hits
        )

    def axis(
        self, block_words: int, max_sets: Optional[int] = None
    ) -> Dict[int, int]:
        """One block size's direct-mapped size axis: ``{num_sets: misses}``."""
        plane = self.plane(block_words, max_sets=max_sets)
        return {s: plane.misses(s, 1) for s in plane.set_counts}

    def misses(self, block_words: int, num_sets: int, ways: int) -> int:
        """Exact miss count of one ``(B, S, A)`` geometry."""
        return self.plane(block_words).misses(num_sets, ways)

    def capacity_misses(self, block_words: int, size_blocks: int, ways: int) -> int:
        """Miss count at fixed capacity: ``size_blocks / ways`` sets."""
        return self.plane(block_words).capacity_misses(size_blocks, ways)


class ShiftedStreams(Mapping):
    """Lazy ``{block_words: block index stream}`` views of one address stream.

    Block-size doubling is a right-shift of the shared byte-address
    stream, so nothing needs materializing up front: each block size's
    stream is derived on access and lives only as long as the caller
    holds it.  Consumers that walk block sizes one at a time — the cube
    engine does — therefore hold one shifted stream at a time instead of
    one per block size, which is what lets a memory-mapped address
    bundle flow through :func:`miss_cube_from_addresses` without the
    eager per-block copies piling up.
    """

    def __init__(
        self, addresses: np.ndarray, block_words: Sequence[int]
    ) -> None:
        self._addresses = addresses
        self._blocks = checked_block_words(block_words)

    def __getitem__(self, block_words: int) -> np.ndarray:
        if block_words not in self._blocks:
            raise KeyError(block_words)
        return addresses_to_blocks(self._addresses, block_words)

    def __iter__(self) -> Iterator[int]:
        return iter(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)


def _normalized_set_counts(
    blocks: Tuple[int, ...], set_counts: SetCounts
) -> Dict[int, Sequence[int]]:
    if isinstance(set_counts, Mapping):
        unknown = set(set_counts) - set(blocks)
        if unknown:
            raise ConfigurationError(
                f"set counts given for uncovered block sizes: {sorted(unknown)}"
            )
        return {B: set_counts.get(B, ()) for B in blocks}
    return {B: set_counts for B in blocks}


def miss_cube(
    streams: Mapping[int, np.ndarray], set_counts: SetCounts, max_ways: int
) -> MissCube:
    """The whole miss cube over per-block-size reference streams.

    Args:
        streams: ``{block_words: block index sequence}``.  Streams for
            different block sizes may differ in length (e.g. run-collapsed
            instruction streams); when they are pure shift views of one
            address stream, use :func:`miss_cube_from_addresses`.
        set_counts: Either one set-count sequence applied to every block
            size, or ``{block_words: set counts}`` (typically
            :func:`capacity_set_counts`).
        max_ways: Largest associativity to answer.

    One engine pass: each block size runs its own O(n) radix chain (set
    windows at different bit offsets cannot share one refinement), every
    harvested ``(block size, level)`` slice joins a single concatenated
    rank count — the dominant cost — and one histogram pass scatters the
    distances back into per-geometry hit curves.
    """
    if max_ways < 1:
        raise ConfigurationError(f"max_ways must be at least 1, got {max_ways}")
    max_ways = int(max_ways)
    blocks_covered = checked_block_words(list(streams))
    per_block = _normalized_set_counts(blocks_covered, set_counts)
    references: Dict[int, int] = {}
    hits: Dict[int, Dict[int, np.ndarray]] = {}
    ordered: List[_LevelSlice] = []
    keys: List[Tuple[int, int]] = []
    removed_runs: Dict[int, int] = {}
    by_sets_all: Dict[int, Dict[int, int]] = {}
    for B in blocks_covered:
        stream = np.asarray(streams[B], dtype=np.int64)
        references[B] = len(stream)
        by_sets = checked_levels(per_block[B])
        by_sets_all[B] = by_sets
        hits[B] = {}
        if not by_sets:
            continue
        if len(stream) == 0:
            for num_sets in by_sets:
                hits[B][num_sets] = np.zeros(max_ways + 1, dtype=np.int64)
            continue
        # Whole-stream run compression: an adjacent repeat of the same
        # block has stack distance exactly 1 at every set count of this
        # block size (nothing intervenes in its set) and leaves every
        # LRU stack untouched, so it is dropped once for all levels.
        keep = np.empty(len(stream), dtype=bool)
        keep[0] = True
        np.not_equal(stream[1:], stream[:-1], out=keep[1:])
        deduped = stream[keep]
        removed_runs[B] = len(stream) - len(deduped)
        # Drop the (possibly lazily shifted) source before the next
        # block size: with ShiftedStreams inputs this caps the engine at
        # one materialized full-length stream at a time.
        del stream, keep
        wanted = sorted(set(by_sets.values()))
        slices = _stream_slices(deduped, wanted)
        for level in wanted:
            ordered.append(slices[level])
            keys.append((B, level))
    hits_per_slice = dict(zip(keys, _concatenated_hits(ordered, max_ways)))
    for B, by_sets in by_sets_all.items():
        for num_sets, level in by_sets.items():
            curve = hits_per_slice.get((B, level))
            if curve is None:
                continue  # empty stream, already zero-filled
            curve = curve.copy()
            curve[1:] += removed_runs[B]
            hits[B][num_sets] = curve
    return MissCube(references=references, max_ways=max_ways, hits=hits)


def miss_cube_from_addresses(
    addresses: np.ndarray,
    block_words: Sequence[int],
    set_counts: SetCounts,
    max_ways: int,
) -> MissCube:
    """The miss cube of one byte-address stream at several block sizes.

    ``addresses_to_blocks`` hoisted into the engine: block-size doubling
    is one right-shift of the shared address stream, so the whole cube
    comes from a single pass over one stream.  ``addresses`` may be a
    memory-mapped bundle view — the shifted streams are derived lazily
    (:class:`ShiftedStreams`), one block size at a time, so nothing ever
    copies the whole stream per block size.
    """
    return miss_cube(
        ShiftedStreams(addresses, block_words), set_counts, max_ways
    )
