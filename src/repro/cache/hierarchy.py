"""Two-level cache hierarchy with a split L1.

The paper's processor (Figure 1) has split primary caches — L1-I and
L1-D, each accessed every cycle — backed by a large L2 modelled as a
constant-time backing store ("given a constant time L1 miss penalty").
:class:`CacheHierarchy` composes the pieces and converts miss counts into
stall cycles, which is all the CPI model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.cache import Cache
from repro.cache.refill import RefillModel
from repro.errors import ConfigurationError

__all__ = ["CacheHierarchy"]


@dataclass
class CacheHierarchy:
    """A split-L1 hierarchy over a constant-latency backing store.

    Args:
        icache: The L1-I cache.
        dcache: The L1-D cache.
        refill: Refill timing shared by both sides (the paper refills both
            from the same L2/MCM path).
    """

    icache: Cache
    dcache: Cache
    refill: RefillModel = field(default_factory=RefillModel)

    def __post_init__(self) -> None:
        if self.icache is self.dcache:
            raise ConfigurationError("split L1 requires distinct I and D caches")

    def fetch(self, address: int) -> int:
        """Instruction fetch; returns stall cycles (0 on hit)."""
        if self.icache.access(address):
            return 0
        return self.refill.penalty_cycles(self.icache.block_words)

    def load(self, address: int) -> int:
        """Data read; returns stall cycles."""
        if self.dcache.access(address):
            return 0
        return self.refill.penalty_cycles(self.dcache.block_words)

    def store(self, address: int) -> int:
        """Data write (write-allocate); returns stall cycles."""
        if self.dcache.access(address, write=True):
            return 0
        return self.refill.penalty_cycles(self.dcache.block_words)

    @property
    def miss_penalty_i(self) -> int:
        return self.refill.penalty_cycles(self.icache.block_words)

    @property
    def miss_penalty_d(self) -> int:
        return self.refill.penalty_cycles(self.dcache.block_words)

    def stall_cycles(self) -> int:
        """Total stall cycles implied by the accumulated miss counts."""
        return (
            self.icache.stats.misses * self.miss_penalty_i
            + self.dcache.stats.misses * self.miss_penalty_d
        )

    def flush(self) -> None:
        """Invalidate both caches (e.g. at a simulated context switch)."""
        self.icache.flush()
        self.dcache.flush()
