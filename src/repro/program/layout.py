"""Code layout: assigning instruction addresses to basic blocks.

Layout matters twice in the reproduction:

* the canonical code layout defines the instruction addresses the L1-I cache
  sees for an architecture with zero delay slots;
* the delay-slot scheduler expands blocks (replicated target instructions,
  noop padding), and the *expanded* layout is what produces the extra
  instruction-cache misses of Figure 3.

Addresses are byte addresses; every instruction occupies one 4-byte word.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.program.cfg import Program
from repro.utils.units import WORD_BYTES

__all__ = ["CodeLayout"]


class CodeLayout:
    """Maps block names to addresses for a (possibly expanded) program.

    Args:
        program: The program to lay out.
        block_lengths: Optional override of each block's length in
            instructions.  When omitted, canonical lengths are used.  The
            delay-slot scheduler passes the expanded lengths here.
        base: Byte address of the first instruction (defaults to the
            program's text base).
    """

    def __init__(
        self,
        program: Program,
        block_lengths: Optional[Mapping[str, int]] = None,
        base: Optional[int] = None,
    ) -> None:
        self._program = program
        self._base = program.text_base if base is None else base
        if self._base % WORD_BYTES != 0:
            raise ConfigurationError(f"text base {self._base:#x} is not word aligned")
        self._address: Dict[str, int] = {}
        self._length: Dict[str, int] = {}
        cursor = self._base
        for block in program.blocks():
            length = len(block)
            if block_lengths is not None:
                length = block_lengths.get(block.name, length)
                if length < len(block):
                    raise ConfigurationError(
                        f"block {block.name!r}: expanded length {length} is "
                        f"smaller than canonical length {len(block)}"
                    )
            self._address[block.name] = cursor
            self._length[block.name] = length
            cursor += length * WORD_BYTES
        self._end = cursor

    @property
    def base(self) -> int:
        return self._base

    @property
    def end(self) -> int:
        """First byte address past the laid-out code."""
        return self._end

    @property
    def code_words(self) -> int:
        """Total laid-out code size in instructions (= words)."""
        return (self._end - self._base) // WORD_BYTES

    def address_of(self, block_name: str) -> int:
        """Byte address of the first instruction of a block."""
        return self._address[block_name]

    def length_of(self, block_name: str) -> int:
        """Laid-out length of a block, in instructions."""
        return self._length[block_name]

    def is_backward_edge(self, source_block: str, target_block: str) -> bool:
        """True if a CTI in ``source_block`` jumping to ``target_block``
        transfers control backwards (to a lower address).

        The static branch predictor of Section 3.1 predicts backward
        branches taken.
        """
        return self.address_of(target_block) <= self.address_of(source_block)
