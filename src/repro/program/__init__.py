"""Program representation: basic blocks, control-flow graphs, code layout.

The paper's methodology operates on *canonical* object code — code with no
delay slots at all ("a translation file for an architecture with zero delay
cycles ... produced by removing all noop instructions that appear after
CTIs").  This package represents that canonical form:

* a :class:`~repro.program.basic_block.BasicBlock` is straight-line code
  whose final instruction may be a CTI;
* a :class:`~repro.program.cfg.ControlFlowGraph` groups blocks into
  procedures with fall-through/taken/call edges;
* :class:`~repro.program.layout.CodeLayout` assigns instruction addresses —
  both to the canonical code and to the expanded code the delay-slot
  scheduler produces;
* :mod:`~repro.program.dependence` answers the def/use questions that the
  branch and load delay-slot schedulers ask.
"""

from repro.program.basic_block import BasicBlock
from repro.program.cfg import ControlFlowGraph, Procedure, Program
from repro.program.layout import CodeLayout
from repro.program.dependence import (
    cti_hoist_distance,
    flow_dependences,
    independent_prefix_length,
)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "Procedure",
    "Program",
    "CodeLayout",
    "cti_hoist_distance",
    "flow_dependences",
    "independent_prefix_length",
]
