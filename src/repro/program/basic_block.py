"""Basic blocks of canonical (delay-slot-free) code."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.isa.instruction import Instruction

__all__ = ["BasicBlock"]


@dataclass
class BasicBlock:
    """Straight-line code whose final instruction may be a CTI.

    Attributes:
        name: Unique label of the block within its program.
        instructions: The block body.  Only the last instruction may be a
            CTI; this invariant is checked by :meth:`validate`.
        taken_target: Name of the block reached when the terminating CTI is
            taken.  ``None`` for fall-through-only blocks and for
            register-indirect jumps (whose target is dynamic).
        fallthrough: Name of the next sequential block, or ``None`` when the
            block ends in an unconditional CTI (or ends the program).
        taken_bias: Probability that the terminating conditional branch is
            taken at run time.  Irrelevant (and ignored) for blocks without
            a conditional branch.  This is the workload model's annotation;
            the executor draws outcomes from it.
        backward: True if the terminating branch jumps backwards (to a lower
            address) — the static predictor predicts backward branches
            taken, forward branches not-taken (Section 3.1, step 3).
        indirect_targets: For register-indirect CTIs that are not returns
            (``jalr`` indirect calls, ``jr`` computed gotos), the candidate
            destination block names the executor chooses among.  A plain
            ``jr $ra`` return leaves this empty; its destination comes from
            the call stack.
    """

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    taken_target: Optional[str] = None
    fallthrough: Optional[str] = None
    taken_bias: float = 0.5
    backward: bool = False
    indirect_targets: List[str] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instruction]:
        """The terminating CTI, or None if the block only falls through."""
        if self.instructions and self.instructions[-1].is_cti:
            return self.instructions[-1]
        return None

    @property
    def body(self) -> List[Instruction]:
        """Instructions excluding the terminating CTI."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return list(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def validate(self) -> None:
        """Check block invariants; raise :class:`ConfigurationError` if broken.

        * only the final instruction may be a CTI;
        * a conditional terminator needs both a taken target and a
          fall-through; an unconditional direct jump needs a taken target
          and no fall-through; ``taken_bias`` must be a probability.
        """
        for inst in self.instructions[:-1]:
            if inst.is_cti:
                raise ConfigurationError(
                    f"block {self.name!r}: CTI {inst} not in terminal position"
                )
        term = self.terminator
        if term is not None:
            if term.is_conditional_branch:
                if self.taken_target is None or self.fallthrough is None:
                    raise ConfigurationError(
                        f"block {self.name!r}: conditional branch needs both edges"
                    )
            elif term.is_register_indirect:
                if self.taken_target is not None:
                    raise ConfigurationError(
                        f"block {self.name!r}: register-indirect jump target "
                        "must be dynamic (taken_target=None)"
                    )
            else:  # direct jump
                if self.taken_target is None:
                    raise ConfigurationError(
                        f"block {self.name!r}: jump needs a taken target"
                    )
        if not 0.0 <= self.taken_bias <= 1.0:
            raise ConfigurationError(
                f"block {self.name!r}: taken_bias {self.taken_bias} not in [0, 1]"
            )
