"""Within-block data-dependence analysis.

Both delay-slot schedulers ask the same kinds of questions:

* the branch scheduler (Section 3.1, step 2) needs to know how far the
  terminating CTI can be hoisted over its predecessors — limited by the
  instructions that define the CTI's condition/target registers;
* the load scheduler (Section 3.2) needs, for each load, the number of
  *independent* instructions around it that could fill its delay slots, and
  the distance to the first consumer of its result.

Dependences considered are true (flow) dependences through registers plus a
memory ordering constraint: a load may move past a store only when their
addresses provably differ.  The paper's "best static scheduling" assumes
*perfect memory disambiguation*, which we model by comparing (base register,
offset) pairs symbolically — identical pairs conflict, anything else is
assumed disjoint.  Output dependences through registers are ignored for the
CTI hoist (the CTI writes at most the link register) and respected where
they matter in the load analysis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpcodeKind
from repro.isa.registers import Register

__all__ = [
    "flow_dependences",
    "cti_hoist_distance",
    "independent_prefix_length",
    "memory_conflict",
    "use_distance",
]


def memory_conflict(a: Instruction, b: Instruction) -> bool:
    """True if two memory instructions may touch the same word.

    With perfect disambiguation, accesses conflict only when both are memory
    operations, at least one is a store, and the symbolic addresses (base
    register + offset) are identical.
    """
    if not (a.is_memory and b.is_memory):
        return False
    if a.is_load and b.is_load:
        return False
    return a.base == b.base and a.offset == b.offset


def flow_dependences(instructions: Sequence[Instruction]) -> List[Tuple[int, int]]:
    """Return all (producer, consumer) index pairs with a true dependence.

    A pair (i, j), i < j, is reported when instruction j reads a register
    that instruction i is the most recent writer of, or when i and j have a
    memory conflict.
    """
    deps: List[Tuple[int, int]] = []
    last_writer: Dict[Register, int] = {}
    memory_ops: List[int] = []
    for j, inst in enumerate(instructions):
        for reg in inst.uses:
            if reg in last_writer:
                deps.append((last_writer[reg], j))
        if inst.is_memory:
            for i in memory_ops:
                if memory_conflict(instructions[i], inst):
                    deps.append((i, j))
            memory_ops.append(j)
        for reg in inst.defs:
            last_writer[reg] = j
    return sorted(set(deps))


def cti_hoist_distance(instructions: Sequence[Instruction]) -> int:
    """How many predecessors the terminating CTI can be hoisted over.

    This is the paper's ``r``: the number of instructions immediately before
    the CTI that (a) do not define a register the CTI reads and (b) are safe
    to execute in a delay slot — i.e. are not CTIs or syscalls themselves.
    Only the CTI moves; the other instructions keep their relative order
    (Section 3.1, step 2: "No attempt is made to rearrange the ordering of
    any other instructions").

    Returns 0 when the block does not end in a CTI.
    """
    if not instructions or not instructions[-1].is_cti:
        return 0
    cti = instructions[-1]
    needed: Set[Register] = set(cti.uses)
    distance = 0
    for inst in reversed(instructions[:-1]):
        if inst.is_cti or inst.kind is OpcodeKind.SYSCALL:
            break
        if inst.defs & needed:
            break
        distance += 1
    return distance


def independent_prefix_length(
    instructions: Sequence[Instruction], position: int
) -> int:
    """Number of instructions before ``position`` independent of it.

    Counts the maximal run of instructions immediately preceding
    ``instructions[position]`` that the instruction at ``position`` does not
    depend on (registers or memory).  This is the within-block scheduling
    headroom ``c`` available for moving a load earlier.
    """
    target = instructions[position]
    needed: Set[Register] = set(target.uses)
    count = 0
    for inst in reversed(instructions[:position]):
        if inst.is_cti or inst.kind is OpcodeKind.SYSCALL:
            break
        if inst.defs & needed:
            break
        if memory_conflict(inst, target):
            break
        count += 1
    return count


def use_distance(
    instructions: Sequence[Instruction], position: int, horizon: int
) -> int:
    """Distance from ``position`` to the first consumer of its result.

    Scans forward up to ``horizon`` instructions.  Returns the number of
    instructions strictly between the producer and its first consumer (the
    paper's ``d``); returns ``horizon`` when no consumer (or overwrite of
    the produced register) is found within the window.
    """
    produced = instructions[position].defs
    if not produced:
        return horizon
    for ahead in range(1, horizon + 1):
        index = position + ahead
        if index >= len(instructions):
            return horizon
        inst = instructions[index]
        if inst.uses & produced:
            return ahead - 1
        if inst.defs & produced:
            # Result dead before use within the window: no consumer.
            return horizon
    return horizon
