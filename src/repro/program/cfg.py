"""Control-flow graphs, procedures, and whole programs.

A :class:`Program` is a list of :class:`Procedure` objects, each of which is
a :class:`ControlFlowGraph` of basic blocks in layout order.  Calls are
represented structurally: a block terminated by ``jal`` names the callee
procedure's entry block as its taken target and the return-continuation
block as its fall-through; the trace executor maintains the call stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.isa.instruction import Instruction
from repro.program.basic_block import BasicBlock

__all__ = ["ControlFlowGraph", "Procedure", "Program"]


class ControlFlowGraph:
    """An ordered collection of basic blocks with resolvable edges.

    Block order is layout order: the fall-through of a block must be the
    next block in the order, which is how real object code behaves and what
    the code-layout pass relies on.
    """

    def __init__(self, blocks: Iterable[BasicBlock] = ()) -> None:
        self._blocks: Dict[str, BasicBlock] = {}
        for block in blocks:
            self.add_block(block)

    def add_block(self, block: BasicBlock) -> None:
        if block.name in self._blocks:
            raise ConfigurationError(f"duplicate block name {block.name!r}")
        self._blocks[block.name] = block

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __getitem__(self, name: str) -> BasicBlock:
        return self._blocks[name]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self._blocks.values())

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def block_names(self) -> List[str]:
        return list(self._blocks)

    def successors(self, name: str) -> List[str]:
        """Possible static successors of a block (excluding call-stack returns)."""
        block = self._blocks[name]
        result = []
        if block.taken_target is not None:
            result.append(block.taken_target)
        result.extend(block.indirect_targets)
        if block.fallthrough is not None and (
            block.terminator is None or block.terminator.is_conditional_branch
        ):
            result.append(block.fallthrough)
        return result


@dataclass
class Procedure:
    """A named procedure: its blocks in layout order.

    The entry block is the first block.  ``jr $ra`` in any block returns to
    the caller's continuation.
    """

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)

    @property
    def entry(self) -> str:
        if not self.blocks:
            raise ConfigurationError(f"procedure {self.name!r} has no blocks")
        return self.blocks[0].name

    @property
    def instruction_count(self) -> int:
        """Static instruction count of the procedure's canonical code."""
        return sum(len(b) for b in self.blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)


@dataclass
class Program:
    """A whole program: procedures plus a global block namespace.

    Attributes:
        name: Program (benchmark) name.
        procedures: In layout order; the first is the entry procedure.
        text_base: Byte address at which the canonical code is laid out.
    """

    name: str
    procedures: List[Procedure] = field(default_factory=list)
    text_base: int = 0x0040_0000  # conventional MIPS text segment base

    def __post_init__(self) -> None:
        self._block_map: Optional[Dict[str, BasicBlock]] = None
        self._proc_of: Optional[Dict[str, str]] = None

    def _index(self) -> None:
        self._block_map = {}
        self._proc_of = {}
        for proc in self.procedures:
            for block in proc.blocks:
                if block.name in self._block_map:
                    raise ConfigurationError(
                        f"duplicate block name {block.name!r} across procedures"
                    )
                self._block_map[block.name] = block
                self._proc_of[block.name] = proc.name

    @property
    def block_map(self) -> Dict[str, BasicBlock]:
        """Name -> block over all procedures (computed lazily, cached)."""
        if self._block_map is None:
            self._index()
        assert self._block_map is not None
        return self._block_map

    def block(self, name: str) -> BasicBlock:
        return self.block_map[name]

    def procedure_of(self, block_name: str) -> str:
        """Name of the procedure containing ``block_name``."""
        if self._proc_of is None:
            self._index()
        assert self._proc_of is not None
        return self._proc_of[block_name]

    def invalidate_index(self) -> None:
        """Drop cached indices after structural mutation (used by schedulers)."""
        self._block_map = None
        self._proc_of = None

    @property
    def entry(self) -> str:
        """Entry block of the entry procedure."""
        if not self.procedures:
            raise ConfigurationError(f"program {self.name!r} has no procedures")
        return self.procedures[0].entry

    def blocks(self) -> Iterator[BasicBlock]:
        """All blocks in layout order."""
        for proc in self.procedures:
            yield from proc.blocks

    @property
    def static_instruction_count(self) -> int:
        """Static size of the canonical code, in instructions (= words)."""
        return sum(p.instruction_count for p in self.procedures)

    def ctis(self) -> Iterator[Instruction]:
        """All terminating CTIs in layout order."""
        for block in self.blocks():
            term = block.terminator
            if term is not None:
                yield term

    def validate(self) -> None:
        """Validate every block and every edge of the program."""
        block_map = self.block_map
        for proc in self.procedures:
            for i, block in enumerate(proc.blocks):
                block.validate()
                for succ in (
                    [block.taken_target] if block.taken_target else []
                ) + block.indirect_targets:
                    if succ not in block_map:
                        raise ConfigurationError(
                            f"block {block.name!r} targets unknown block {succ!r}"
                        )
                if block.fallthrough is not None:
                    if block.fallthrough not in block_map:
                        raise ConfigurationError(
                            f"block {block.name!r} falls through to unknown "
                            f"block {block.fallthrough!r}"
                        )
                    # Fall-through must be the next block in layout order
                    # within the same procedure, except after a call (jal /
                    # jalr), where the fall-through is the return
                    # continuation and may be anywhere.
                    term = block.terminator
                    is_call = term is not None and term.info.links
                    if not is_call:
                        if i + 1 >= len(proc.blocks) or (
                            proc.blocks[i + 1].name != block.fallthrough
                        ):
                            raise ConfigurationError(
                                f"block {block.name!r} fall-through "
                                f"{block.fallthrough!r} is not the next block "
                                "in layout order"
                            )
