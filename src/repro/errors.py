"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "AssemblyError",
    "ScheduleError",
    "TraceError",
    "TimingError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid system, cache, or experiment configuration was supplied.

    Raised, for example, for non-power-of-two cache sizes, a block size
    larger than the cache, or a pipeline depth outside the supported range.
    """


class AssemblyError(ReproError):
    """Assembly-language text could not be parsed into instructions."""


class ScheduleError(ReproError):
    """A delay-slot scheduling transformation could not be applied."""


class TraceError(ReproError):
    """A trace could not be generated, read, or interleaved."""


class TimingError(ReproError):
    """Timing analysis failed, e.g. no feasible clock period exists."""


class WorkloadError(ReproError):
    """A synthetic workload specification is inconsistent."""
